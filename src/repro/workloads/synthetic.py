"""Synthetic classification datasets for the numerical experiments.

The paper's convergence properties are inherited from D-KFAC and not
re-measured; what our numerical runs need is a learnable task where (a)
K-FAC's curvature actually matters (anisotropic inputs) and (b) the data
can be sharded across simulated workers like ImageNet shards across
GPUs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

Dataset = Tuple[np.ndarray, np.ndarray]


def gaussian_blobs(
    num_samples: int,
    num_features: int,
    num_classes: int,
    scale_spread: float = 3.0,
    rng: SeedLike = None,
) -> Dataset:
    """Gaussian class clusters with anisotropic feature scales.

    Feature ``k`` is scaled by ``scale_spread ** (k / num_features)``, so
    the input covariance is badly conditioned — the regime where K-FAC's
    preconditioning visibly out-converges SGD per iteration.
    """
    if min(num_samples, num_features, num_classes) < 1:
        raise ValueError("num_samples, num_features, num_classes must be >= 1")
    rng = new_rng(rng)
    centers = rng.normal(0.0, 2.0, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    x = centers[labels] + rng.normal(size=(num_samples, num_features))
    scales = scale_spread ** (np.arange(num_features) / max(num_features - 1, 1))
    return x * scales, labels


def spiral_classification(
    num_samples: int, num_classes: int = 3, noise: float = 0.15, rng: SeedLike = None
) -> Dataset:
    """Classic interleaved-spirals task (non-linear decision boundary)."""
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = new_rng(rng)
    per_class = num_samples // num_classes
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    for c in range(num_classes):
        t = np.linspace(0.1, 1.0, per_class)
        angle = 2.0 * np.pi * (t * 1.5 + c / num_classes)
        radius = t
        pts = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        xs.append(pts + rng.normal(0.0, noise, size=pts.shape))
        ys.append(np.full(per_class, c))
    return np.concatenate(xs), np.concatenate(ys).astype(int)


def synthetic_images(
    num_samples: int,
    channels: int = 1,
    size: int = 8,
    num_classes: int = 4,
    rng: SeedLike = None,
) -> Dataset:
    """Tiny labeled images: class = dominant quadrant of injected signal."""
    if size % 2 != 0:
        raise ValueError("size must be even (quadrant construction)")
    rng = new_rng(rng)
    labels = rng.integers(0, num_classes, size=num_samples)
    x = rng.normal(0.0, 1.0, size=(num_samples, channels, size, size))
    half = size // 2
    quadrant_slices = [
        (slice(0, half), slice(0, half)),
        (slice(0, half), slice(half, size)),
        (slice(half, size), slice(0, half)),
        (slice(half, size), slice(half, size)),
    ]
    for i, label in enumerate(labels):
        rows, cols = quadrant_slices[label % 4]
        x[i, :, rows, cols] += 2.5
    return x, labels


def sharded_batches(
    data: Dataset, world_size: int, batch_size: int, rng: SeedLike = None
) -> Iterator[List[Dataset]]:
    """Endless stream of per-rank mini-batches (data parallelism).

    Every yield is a list of ``world_size`` disjoint batches sampled
    without replacement within the round — each rank sees different data,
    like the per-GPU shards of Eq. 13.
    """
    x, y = data
    if world_size < 1 or batch_size < 1:
        raise ValueError("world_size and batch_size must be >= 1")
    if len(x) < world_size * batch_size:
        raise ValueError("dataset too small for one round of per-rank batches")
    rng = new_rng(rng)
    while True:
        order = rng.permutation(len(x))
        picked = order[: world_size * batch_size]
        yield [
            (x[picked[r * batch_size : (r + 1) * batch_size]],
             y[picked[r * batch_size : (r + 1) * batch_size]])
            for r in range(world_size)
        ]
