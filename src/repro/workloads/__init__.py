"""Synthetic workloads standing in for ImageNet (see DESIGN.md §2)."""

from repro.workloads.synthetic import (
    gaussian_blobs,
    sharded_batches,
    spiral_classification,
    synthetic_images,
)

__all__ = [
    "gaussian_blobs",
    "spiral_classification",
    "synthetic_images",
    "sharded_batches",
]
