"""Disk-backed, content-addressed store for plans and results.

A :class:`PlanStore` persists JSON documents keyed by canonical content
digests (:func:`repro.utils.digest.content_digest`), so deterministic
artifacts — resolved plans, simulation summaries, autotune reports —
survive process restarts and are shared between every process pointing
at the same directory.

Layout of a store rooted at ``DIR``::

    DIR/
      objects/<key[:2]>/<key>.json   # one envelope per entry
      quarantine/                    # corrupted entries, moved aside
      index.json                     # key -> {kind} listing (rebuildable)
      store.lock                     # cross-process flock target

Durability and concurrency:

* **Atomic writes** — entries are written to a temp file in the target
  directory, flushed, ``fsync``-ed, then ``os.replace``-d into place;
  readers can never observe a partial entry.
* **Fsync-safe index** — ``index.json`` is rewritten with the same
  temp + fsync + replace discipline, *after* the object lands.  The
  object files are the source of truth: :meth:`get` reads them
  directly, and :meth:`rebuild_index` regenerates the index from a
  directory scan, so a crash between the two writes loses nothing.
* **Cross-process file locking** — writers serialize on an ``flock`` of
  ``store.lock`` (advisory, POSIX; a no-op fallback keeps the store
  usable on platforms without ``fcntl``).  Readers are lock-free.
* **Corruption quarantine** — an entry that fails to parse, carries the
  wrong envelope key, or has an unknown schema is moved into
  ``quarantine/`` (never deleted) and reported as a miss.

Entries are wrapped in a tiny envelope ``{"schema": 1, "key": ...,
"kind": ..., "payload": ...}`` so :meth:`get` can detect truncation and
misfiled content, not just JSON syntax errors.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Iterator, Optional

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "PlanStore", "STORE_SCHEMA_VERSION"]

#: Envelope schema written around every stored payload.
STORE_SCHEMA_VERSION = 1

_KEY_CHARS = frozenset("0123456789abcdef")


class FileLock:
    """Advisory cross-process lock on one file (``flock``-based).

    Usable as a context manager; each acquisition opens its own file
    descriptor, so concurrent threads of one process exclude each other
    exactly like separate processes do.  On platforms without ``fcntl``
    the lock degrades to a per-process ``threading.Lock`` (documented:
    multi-process writers then race, readers stay safe thanks to atomic
    replaces).
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        # The holder's fd lives in thread-local storage: a shared FileLock
        # instance must not let thread B's acquire clobber the fd thread A
        # is about to release.
        self._local = threading.local()
        self._fallback = threading.Lock() if fcntl is None else None

    def acquire(self) -> None:
        """Block until the lock is held."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            assert self._fallback is not None
            self._fallback.acquire()
            return
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        self._local.fd = fd

    def release(self) -> None:
        """Release the lock (a no-op if this thread does not hold it)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            assert self._fallback is not None
            if self._fallback.locked():
                self._fallback.release()
            return
        fd = getattr(self._local, "fd", None)
        if fd is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
            self._local.fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def _atomic_write_json(path: str, document: object) -> None:
    """Write ``document`` to ``path`` via temp file + fsync + rename."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(document, f, sort_keys=True, separators=(",", ":"))
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Make the rename itself durable (POSIX: fsync the directory).
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY dirs unsupported
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class PlanStore:
    """Content-addressed JSON store on disk (see module docstring).

    Examples
    --------
    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> store = PlanStore(root)
    >>> key = "ab" * 8
    >>> store.put(key, {"makespan": 0.25}, kind="demo")
    >>> store.get(key)
    {'makespan': 0.25}
    >>> PlanStore(root).get(key)        # a fresh process sees it too
    {'makespan': 0.25}
    >>> sorted(store.stats().items())[:2]
    [('entries', 1), ('hits', 1)]
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        self._objects = os.path.join(self.root, "objects")
        self._quarantine = os.path.join(self.root, "quarantine")
        self._index_path = os.path.join(self.root, "index.json")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._quarantine, exist_ok=True)
        self._lock = FileLock(os.path.join(self.root, "store.lock"))
        self._stats_lock = threading.Lock()
        self._counters = {"hits": 0, "misses": 0, "writes": 0, "quarantined": 0}

    # -- keys and paths ------------------------------------------------------

    @staticmethod
    def check_key(key: str) -> str:
        """Validate a store key (lowercase hex, 8..64 chars); returns it."""
        if (
            not isinstance(key, str)
            or not 8 <= len(key) <= 64
            or not set(key) <= _KEY_CHARS
        ):
            raise ValueError(
                f"store keys are 8..64 lowercase hex chars (a content "
                f"digest); got {key!r}"
            )
        return key

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.json")

    def _count(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += amount

    # -- core API ------------------------------------------------------------

    def put(self, key: str, payload: object, *, kind: str = "generic") -> None:
        """Persist ``payload`` (JSON-serializable) under ``key`` atomically.

        Overwrites any existing entry for ``key`` (content-addressed
        keys make overwrites idempotent re-writes of equal content).
        """
        self.check_key(key)
        envelope = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        path = self._object_path(key)
        with self._lock:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            _atomic_write_json(path, envelope)
            self._index_add(key, kind)
        self._count("writes")

    def get(self, key: str) -> Optional[object]:
        """The payload stored under ``key``, or ``None``.

        Entries that fail to load — unparseable JSON, truncation, a
        mismatched envelope key, an unknown schema — are moved to the
        quarantine directory and reported as misses.
        """
        self.check_key(key)
        path = self._object_path(key)
        try:
            with open(path) as f:
                envelope = json.load(f)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA_VERSION
                or envelope.get("key") != key
                or "payload" not in envelope
            ):
                raise ValueError(f"invalid store envelope in {path}")
        except FileNotFoundError:
            self._count("misses")
            return None
        except (ValueError, OSError):
            self.quarantine(key)
            self._count("misses")
            return None
        self._count("hits")
        return envelope["payload"]

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._object_path(self.check_key(key)))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """All stored keys, from a directory scan (index-independent)."""
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def quarantine(self, key: str) -> Optional[str]:
        """Move ``key``'s entry file into the quarantine directory.

        Returns the quarantine path (``None`` if the entry vanished
        first).  Quarantined files keep their content for post-mortems;
        a numeric suffix avoids clobbering earlier quarantines of the
        same key.
        """
        path = self._object_path(key)
        with self._lock:
            if not os.path.exists(path):
                return None
            dest = os.path.join(self._quarantine, f"{key}.json")
            suffix = 0
            while os.path.exists(dest):
                suffix += 1
                dest = os.path.join(self._quarantine, f"{key}.json.{suffix}")
            os.replace(path, dest)
            self._index_discard(key)
        self._count("quarantined")
        return dest

    # -- index ---------------------------------------------------------------

    def _read_index(self) -> Dict[str, Dict[str, str]]:
        try:
            with open(self._index_path) as f:
                index = json.load(f)
        except (FileNotFoundError, ValueError, OSError):
            return {}
        entries = index.get("entries") if isinstance(index, dict) else None
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, entries: Dict[str, Dict[str, str]]) -> None:
        _atomic_write_json(
            self._index_path,
            {"schema": STORE_SCHEMA_VERSION, "entries": entries},
        )

    def _index_add(self, key: str, kind: str) -> None:
        entries = self._read_index()
        entries[key] = {"kind": kind}
        self._write_index(entries)

    def _index_discard(self, key: str) -> None:
        entries = self._read_index()
        if key in entries:
            del entries[key]
            self._write_index(entries)

    def index(self) -> Dict[str, Dict[str, str]]:
        """The current index: ``{key: {"kind": ...}}`` (a copy)."""
        return dict(self._read_index())

    def rebuild_index(self) -> int:
        """Regenerate ``index.json`` from the object files; returns count.

        Entries that fail to load are quarantined along the way, so a
        rebuild doubles as a full-store verification pass.
        """
        entries: Dict[str, Dict[str, str]] = {}
        for key in list(self.keys()):
            path = self._object_path(key)
            try:
                with open(path) as f:
                    envelope = json.load(f)
                if (
                    not isinstance(envelope, dict)
                    or envelope.get("schema") != STORE_SCHEMA_VERSION
                    or envelope.get("key") != key
                    or "payload" not in envelope
                ):
                    raise ValueError(f"invalid store envelope in {path}")
            except (ValueError, OSError):
                self.quarantine(key)
                continue
            entries[key] = {"kind": str(envelope.get("kind", "generic"))}
        with self._lock:
            self._write_index(entries)
        return len(entries)

    # -- garbage collection --------------------------------------------------

    def total_bytes(self) -> int:
        """Total on-disk size of every object file (quarantine excluded)."""
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._object_path(key))
            except OSError:  # pragma: no cover - raced with an eviction
                pass
        return total

    def gc(
        self,
        *,
        max_objects: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, int]:
        """Evict oldest entries until the store fits under the given caps.

        Eviction is oldest-first by object-file mtime (ties broken by
        key, so concurrent GCs of the same store delete the same
        entries), runs entirely under the cross-process write lock, and
        rewrites ``index.json`` once after the deletions.  The object
        files stay the source of truth: a GC killed between an unlink
        and the index rewrite leaves dangling index rows that read as
        plain misses and disappear on the next :meth:`rebuild_index` (or
        the next GC/put, which rewrite the index from disk state).

        Un-evicted entries are never touched — their bytes on disk are
        exactly what :meth:`put` wrote.

        Returns ``{"evicted", "kept", "bytes_freed", "bytes_kept"}``.
        With both caps ``None`` this is a no-op inventory pass.
        """
        if max_objects is not None and max_objects < 0:
            raise ValueError(f"max_objects must be >= 0, got {max_objects}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        evicted = bytes_freed = 0
        with self._lock:
            entries = []  # (mtime, key, size)
            for key in self.keys():
                path = self._object_path(key)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, key, stat.st_size))
            entries.sort()
            count = len(entries)
            size = sum(e[2] for e in entries)
            survivors = {key: None for _, key, _ in entries}
            for mtime, key, nbytes in entries:
                over_objects = max_objects is not None and count > max_objects
                over_bytes = max_bytes is not None and size > max_bytes
                if not (over_objects or over_bytes):
                    break
                try:
                    os.unlink(self._object_path(key))
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                del survivors[key]
                count -= 1
                size -= nbytes
                evicted += 1
                bytes_freed += nbytes
            if evicted:
                kinds = self._read_index()
                self._write_index(
                    {
                        key: kinds.get(key, {"kind": "generic"})
                        for key in survivors
                    }
                )
        return {
            "evicted": evicted,
            "kept": count,
            "bytes_freed": bytes_freed,
            "bytes_kept": size,
        }

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Entry count plus this instance's hit/miss/write/quarantine totals."""
        with self._stats_lock:
            counters = dict(self._counters)
        quarantined_files = [
            name for name in os.listdir(self._quarantine) if not name.startswith(".")
        ]
        return {
            "entries": len(self),
            "quarantine_files": len(quarantined_files),
            **counters,
        }

    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` for this instance (0.0 when idle)."""
        with self._stats_lock:
            hits = self._counters["hits"]
            misses = self._counters["misses"]
        total = hits + misses
        return hits / total if total else 0.0

    def clear(self) -> int:
        """Delete every entry (quarantine kept); returns removed count."""
        removed = 0
        with self._lock:
            for key in list(self.keys()):
                try:
                    os.unlink(self._object_path(key))
                    removed += 1
                except FileNotFoundError:
                    pass
            self._write_index({})
        return removed

    def __repr__(self) -> str:
        return f"PlanStore(root={self.root!r}, entries={len(self)})"
