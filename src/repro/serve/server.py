"""A long-lived, concurrent plan server on the Python standard library.

:class:`PlanServer` wraps a ``ThreadingHTTPServer`` (one thread per
connection, daemon threads) around a :class:`~repro.serve.PlanService`.
Endpoints (all JSON):

====================  ====  ==================================================
``/health``           GET   liveness: ``{"status": "ok", "uptime_s": ...}``
``/stats``            GET   request counts + latency percentiles per
                            endpoint, plan-cache and store counters
``/v1/models``        GET   servable model names
``/v1/strategies``    GET   registered strategy presets
``/v1/plan``          POST  resolve a plan (``model``, ``strategy``,
                            ``gpus`` | ``topology``, ``include_plan``)
``/v1/simulate``      POST  simulate one iteration (same body)
``/v1/autotune``      POST  grid-search (``model``, ``gpus`` | ``topology``,
                            ``top``, ``prune``)
``/shutdown``         POST  graceful remote shutdown (optional; on by
                            default, disable with ``allow_remote_shutdown=False``)
====================  ====  ==================================================

Errors come back as ``{"error": {"code": ..., "message": ...}}`` with
the matching HTTP status (400 validation, 404 unknown resource, 413
oversized body, 500 internal).  Request handling is instrumented twice:
an internal thread-safe latency tracker feeds ``/stats`` (always on),
and when the :mod:`repro.obs` recorder is enabled each request also
emits a ``serve.request`` span plus ``serve.requests``/``serve.errors``
counters and a ``serve.latency`` histogram.

The server binds ``port=0`` (ephemeral) by default so tests and the
load harness can run many instances concurrently; :meth:`PlanServer.start`
runs it on a background thread, and :meth:`PlanServer.serve_forever`
blocks with SIGINT/SIGTERM wired to a graceful shutdown (in-flight
requests finish, the listener closes, the store is left consistent).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.obs import recorder
from repro.serve.service import PlanService, RequestError
# Canonical nearest-rank quantile; re-exported here because the /stats
# percentiles predate repro.utils.stats and callers import it from serve.
from repro.utils.stats import percentile

__all__ = ["PlanServer", "LatencyTracker", "MAX_BODY_BYTES"]

#: Largest accepted request body (strategy axes dicts are tiny; anything
#: bigger is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20

#: Latency samples kept per endpoint for the /stats percentiles.
_MAX_SAMPLES = 200_000




class LatencyTracker:
    """Thread-safe per-endpoint request latency accounting for ``/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: Dict[str, List[float]] = {}
        self._errors: Dict[str, int] = {}

    def record(self, endpoint: str, seconds: float, *, error: bool = False) -> None:
        """Record one finished request."""
        with self._lock:
            samples = self._samples.setdefault(endpoint, [])
            if len(samples) < _MAX_SAMPLES:
                samples.append(seconds)
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-endpoint count/error/percentile summary (a copy)."""
        with self._lock:
            samples = {k: list(v) for k, v in self._samples.items()}
            errors = dict(self._errors)
        out: Dict[str, Dict[str, float]] = {}
        for endpoint, latencies in sorted(samples.items()):
            out[endpoint] = {
                "count": len(latencies),
                "errors": errors.get(endpoint, 0),
                "p50_s": percentile(latencies, 0.50),
                "p90_s": percentile(latencies, 0.90),
                "p99_s": percentile(latencies, 0.99),
                "max_s": max(latencies),
                "mean_s": sum(latencies) / len(latencies),
            }
        return out


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the service; one instance per request."""

    # Set by PlanServer via type(); documented here for the curious.
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    plan_server: "PlanServer"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (stats carry the signal)."""

    def _send_json(self, status: int, body: Dict[str, object]) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Dict[str, object]:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise RequestError("invalid_request", "Content-Length required")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                "invalid_request",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                status=413,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError:
            raise RequestError("invalid_request", "request body is not valid JSON")
        if not isinstance(body, dict):
            raise RequestError("invalid_request", "request body must be a JSON object")
        return body

    # -- routing -------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        server = self.plan_server
        endpoint = self.path.split("?", 1)[0].rstrip("/") or "/"
        started = time.perf_counter()
        status = 200
        rec = server._rec
        try:
            with rec.span("serve.request", endpoint=endpoint, method=method):
                status, body = server.route(method, endpoint, self._read_body)
            self._send_json(status, body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            status = 499
        finally:
            elapsed = time.perf_counter() - started
            server.latency.record(endpoint, elapsed, error=status >= 400)
            rec.count("serve.requests")
            if status >= 400:
                rec.count("serve.errors")
            rec.observe("serve.latency", elapsed)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Serve the read-only endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Serve the query and admin endpoints."""
        self._dispatch("POST")


class PlanServer:
    """The serving frontend: HTTP transport around a :class:`PlanService`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port`).
    store:
        Optional :class:`~repro.serve.PlanStore` or directory path —
        installed process-wide under the Session LRU (see
        :func:`repro.plan.set_plan_store`).
    store_max_bytes:
        Optional on-disk byte cap for the store: enforced at boot and
        periodically while serving via :meth:`PlanStore.gc`
        (oldest-first eviction; the CLI flag is ``--store-max-mb``).
    allow_remote_shutdown:
        Keep the ``POST /shutdown`` endpoint (handy for CI and the load
        harness; disable for anything internet-facing).

    Examples
    --------
    >>> from repro.serve import PlanClient, PlanServer
    >>> with PlanServer() as server:
    ...     client = PlanClient(server.host, server.port)
    ...     client.health()["status"]
    'ok'
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store=None,
        store_max_bytes: Optional[int] = None,
        allow_remote_shutdown: bool = True,
    ):
        self.service = PlanService(store=store, store_max_bytes=store_max_bytes)
        self.latency = LatencyTracker()
        self.allow_remote_shutdown = allow_remote_shutdown
        self._rec = recorder()
        self._started = time.time()
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()
        handler = type("_BoundHandler", (_Handler,), {"plan_server": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` of the listening socket."""
        return f"{self.host}:{self.port}"

    # -- routing -------------------------------------------------------------

    def route(self, method: str, endpoint: str, read_body) -> Tuple[int, Dict]:
        """Map one request to a (status, body) pair.

        ``read_body`` is called lazily so GET endpoints never touch the
        body.  :class:`RequestError` maps to its own status; anything
        else becomes a 500 with the exception type named.
        """
        try:
            if method == "GET":
                if endpoint == "/health":
                    return 200, {
                        "status": "ok",
                        "uptime_s": time.time() - self._started,
                    }
                if endpoint == "/stats":
                    return 200, self.stats()
                if endpoint == "/v1/models":
                    from repro.models.catalog import PAPER_MODELS

                    return 200, {"models": sorted(PAPER_MODELS)}
                if endpoint == "/v1/strategies":
                    from repro.plan import strategy_registry

                    return 200, {
                        "strategies": {
                            name: strategy.to_dict()
                            for name, strategy in strategy_registry.items()
                        }
                    }
                raise RequestError(
                    "unknown_endpoint", f"no GET endpoint {endpoint!r}", status=404
                )
            if method == "POST":
                if endpoint == "/shutdown":
                    if not self.allow_remote_shutdown:
                        raise RequestError(
                            "forbidden", "remote shutdown is disabled", status=403
                        )
                    # Shut down from another thread so this response can
                    # still be written before the listener closes.
                    self._shutdown_requested.set()
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return 200, {"status": "shutting down"}
                if endpoint.startswith("/v1/"):
                    op = endpoint[len("/v1/"):]
                    return 200, self.service.handle(op, read_body())
                raise RequestError(
                    "unknown_endpoint", f"no POST endpoint {endpoint!r}", status=404
                )
            raise RequestError(
                "invalid_request", f"unsupported method {method}", status=405
            )
        except RequestError as exc:
            return exc.status, exc.to_dict()
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            return 500, {
                "error": {
                    "code": "internal_error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            }

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` body: service + transport statistics."""
        return {
            "uptime_s": time.time() - self._started,
            "endpoints": self.latency.snapshot(),
            **self.service.stats(),
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "PlanServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name=f"repro-serve:{self.port}",
        )
        self._thread.start()
        return self

    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Serve on the calling thread until shut down.

        With ``install_signal_handlers`` (main thread only), SIGINT and
        SIGTERM trigger the same graceful shutdown as ``/shutdown``:
        in-flight requests complete, then the listener closes.
        """
        if install_signal_handlers:

            def _graceful(signum, frame):
                threading.Thread(target=self.shutdown, daemon=True).start()

            signal.signal(signal.SIGINT, _graceful)
            signal.signal(signal.SIGTERM, _graceful)
        self._httpd.serve_forever(poll_interval=0.05)
        self._httpd.server_close()

    def shutdown(self) -> None:
        """Gracefully stop serving (idempotent, callable from any thread)."""
        self._shutdown_requested.set()
        self._httpd.shutdown()

    def close(self) -> None:
        """Shut down and release the listening socket."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"PlanServer(address={self.address!r})"
