"""Concurrent load harness for the plan server.

:func:`run_load_test` drives a deterministic, seeded mix of
plan/simulate/autotune queries against a running server from many
threads at once (optionally from multiple *processes* — each worker
process runs its own thread pool), then folds every observed latency
into a :class:`LoadTestReport` with p50/p90/p99/max per operation and
the server's store/cache hit rates.

The workload is two-phase by design:

1. an optional **warmup** pass sends each distinct query once from a
   single thread, populating the Session LRU and the disk store;
2. the **measured** pass fires ``queries`` requests from
   ``concurrency`` clients, sampling from the distinct-query pool with
   a seeded :class:`random.Random` so runs are reproducible.

The BENCH entry ``test_serve_load_resnet50_64gpu`` runs exactly this
harness (≥1000 queries, ≥8 clients, warm) and snapshots the p50/p99.
"""

from __future__ import annotations

import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.client import PlanClient, ServeError, wait_ready
from repro.utils.stats import percentile as _shared_percentile

__all__ = ["LoadTestReport", "default_workload", "run_load_test"]

#: Relative frequency of each operation in the mixed workload.  Autotune
#: is rare (it is by far the heaviest query, and production traffic is
#: dominated by plan/simulate lookups), but always present so every run
#: exercises all three endpoints.
OP_WEIGHTS: Tuple[Tuple[str, int], ...] = (("plan", 5), ("simulate", 4), ("autotune", 1))


def default_workload(
    model: str = "ResNet-50", gpus: int = 64
) -> List[Tuple[str, Dict[str, object]]]:
    """The distinct (op, params) pool the load test samples from.

    Covers every registered strategy preset for ``plan`` and
    ``simulate``, plus one ``autotune`` query, all on the same
    (model, gpus) cell — the shape of a tuning dashboard's traffic.
    """
    from repro.plan import strategy_registry

    pool: List[Tuple[str, Dict[str, object]]] = []
    for name in strategy_registry.names():
        pool.append(("plan", {"model": model, "strategy": name, "gpus": gpus}))
        pool.append(("simulate", {"model": model, "strategy": name, "gpus": gpus}))
    pool.append(("autotune", {"model": model, "gpus": gpus, "top": 3}))
    return pool


def _percentile(samples: List[float], q: float) -> Optional[float]:
    """Nearest-rank quantile, degraded to ``None`` for empty samples.

    The report must stay renderable when *zero* requests succeeded (every
    query errored), so this wraps the canonical validating
    :func:`repro.utils.stats.percentile` with a soft empty-list answer
    instead of its ``ValueError`` (or the bare ``IndexError`` the old
    guard-less local copy raised).
    """
    if not samples:
        return None
    return _shared_percentile(samples, q)


@dataclass
class LoadTestReport:
    """Aggregated outcome of one load-test run."""

    queries: int  #: measured requests attempted
    concurrency: int  #: concurrent client threads
    processes: int  #: worker processes (1 = in-process threads only)
    duration_s: float  #: wall-clock of the measured pass
    errors: int  #: failed requests (ServeError)
    latencies: Dict[str, List[float]] = field(default_factory=dict)  #: op → seconds
    sources: Dict[str, int] = field(default_factory=dict)  #: response source → count
    store_stats: Optional[Dict[str, object]] = None  #: server-side /stats store block

    @property
    def completed(self) -> int:
        """Successfully answered requests."""
        return sum(len(v) for v in self.latencies.values())

    @property
    def throughput(self) -> float:
        """Completed requests per second over the measured pass."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def all_latencies(self) -> List[float]:
        """Every measured latency, across operations."""
        out: List[float] = []
        for samples in self.latencies.values():
            out.extend(samples)
        return out

    def percentile(self, q: float, op: Optional[str] = None) -> Optional[float]:
        """The ``q``-quantile latency overall or for one operation.

        Returns ``None`` when no request of that kind succeeded — a
        zero-successful-op run degrades to empty fields rather than
        raising.
        """
        samples = self.latencies.get(op, []) if op else self.all_latencies()
        return _percentile(samples, q)

    def store_hit_rate(self) -> Optional[float]:
        """The server store's hit rate, if a store was configured."""
        if not self.store_stats:
            return None
        hits = self.store_stats.get("hits", 0)
        misses = self.store_stats.get("misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (per-op percentiles, not raw samples)."""
        ops = {}
        for op, samples in sorted(self.latencies.items()):
            if samples:
                ops[op] = {
                    "count": len(samples),
                    "p50_s": _percentile(samples, 0.50),
                    "p90_s": _percentile(samples, 0.90),
                    "p99_s": _percentile(samples, 0.99),
                    "max_s": max(samples),
                }
        overall = self.all_latencies()
        return {
            "queries": self.queries,
            "completed": self.completed,
            "errors": self.errors,
            "concurrency": self.concurrency,
            "processes": self.processes,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput,
            "p50_s": _percentile(overall, 0.50),
            "p90_s": _percentile(overall, 0.90),
            "p99_s": _percentile(overall, 0.99),
            "ops": ops,
            "sources": dict(sorted(self.sources.items())),
            "store_hit_rate": self.store_hit_rate(),
            "store": self.store_stats,
        }

    def to_text(self) -> str:
        """Human-readable report (the ``serve --load-test`` output)."""
        doc = self.to_dict()
        lines = [
            f"load test: {doc['completed']}/{doc['queries']} queries ok, "
            f"{doc['errors']} errors",
            f"  {self.concurrency} concurrent clients x {self.processes} "
            f"process{'es' if self.processes != 1 else ''}, "
            f"{doc['duration_s']:.2f}s wall, {doc['throughput_rps']:.0f} req/s",
        ]
        if doc["p50_s"] is not None:
            lines.append(
                f"  latency: p50 {doc['p50_s'] * 1e3:.2f} ms, "
                f"p90 {doc['p90_s'] * 1e3:.2f} ms, p99 {doc['p99_s'] * 1e3:.2f} ms"
            )
        for op, stats in doc["ops"].items():
            lines.append(
                f"    {op:<9} n={stats['count']:<5} p50 {stats['p50_s'] * 1e3:.2f} ms"
                f"  p99 {stats['p99_s'] * 1e3:.2f} ms  max {stats['max_s'] * 1e3:.2f} ms"
            )
        if self.sources:
            mix = ", ".join(f"{k}: {v}" for k, v in sorted(self.sources.items()))
            lines.append(f"  sources: {mix}")
        rate = self.store_hit_rate()
        if rate is not None:
            lines.append(f"  store hit rate: {rate:.1%}")
        return "\n".join(lines)


def _run_queries(
    host: str,
    port: int,
    jobs: List[Tuple[str, Dict[str, object]]],
    concurrency: int,
) -> Tuple[Dict[str, List[float]], Dict[str, int], int]:
    """Fire ``jobs`` from ``concurrency`` threads; returns (latencies, sources, errors)."""
    client = PlanClient(host, port)
    latencies: Dict[str, List[float]] = {}
    sources: Dict[str, int] = {}
    errors = 0
    lock = threading.Lock()

    def one(job: Tuple[str, Dict[str, object]]) -> None:
        nonlocal errors
        op, params = job
        started = time.perf_counter()
        try:
            response = client.request("POST", f"/v1/{op}", params)
        except ServeError:
            with lock:
                errors += 1
            return
        elapsed = time.perf_counter() - started
        source = response.get("source", "unknown")
        with lock:
            latencies.setdefault(op, []).append(elapsed)
            sources[source] = sources.get(source, 0) + 1

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(one, jobs))
    return latencies, sources, errors


def _worker_main(host: str, port: int, jobs_json: str, concurrency: int, out_path: str):
    """Entry point for a forked load-generating process."""
    jobs = [(op, params) for op, params in json.loads(jobs_json)]
    latencies, sources, errors = _run_queries(host, port, jobs, concurrency)
    with open(out_path, "w") as fh:
        json.dump({"latencies": latencies, "sources": sources, "errors": errors}, fh)


def run_load_test(
    host: str,
    port: int,
    *,
    queries: int = 1000,
    concurrency: int = 8,
    processes: int = 1,
    seed: int = 0,
    warmup: bool = True,
    workload: Optional[List[Tuple[str, Dict[str, object]]]] = None,
) -> LoadTestReport:
    """Drive ``queries`` seeded mixed requests at a running server.

    With ``processes > 1`` the measured pass is split across that many
    forked worker processes, each running ``concurrency`` client
    threads — a genuine multi-process clientele for exercising the
    store's cross-process file lock.

    Deterministic given (queries, seed, workload): the same sequence of
    requests is issued in every run (arrival *order* under concurrency
    is of course scheduler-dependent).
    """
    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    pool = workload if workload is not None else default_workload()
    if not pool:
        raise ValueError("workload pool is empty")

    wait_ready(host, port)
    if warmup:
        warm_lat, _, warm_errors = _run_queries(host, port, list(pool), 1)
        if warm_errors:
            raise ServeError(
                "transport", f"{warm_errors} warmup queries failed; aborting load test"
            )
        del warm_lat

    # Weighted, seeded sample of the distinct-query pool.
    rng = random.Random(seed)
    weighted: List[Tuple[str, Dict[str, object]]] = []
    for op, weight in OP_WEIGHTS:
        matching = [job for job in pool if job[0] == op]
        weighted.extend(matching * weight)
    if not weighted:
        weighted = list(pool)
    jobs = [rng.choice(weighted) for _ in range(queries)]

    started = time.perf_counter()
    if processes == 1:
        latencies, sources, errors = _run_queries(host, port, jobs, concurrency)
    else:
        latencies, sources, errors = _run_multiprocess(
            host, port, jobs, concurrency, processes
        )
    duration = time.perf_counter() - started

    try:
        stats = PlanClient(host, port).stats()
        store_stats = stats.get("store")
    except ServeError:
        store_stats = None

    return LoadTestReport(
        queries=queries,
        concurrency=concurrency * processes,
        processes=processes,
        duration_s=duration,
        errors=errors,
        latencies=latencies,
        sources=sources,
        store_stats=store_stats,
    )


def _run_multiprocess(host, port, jobs, concurrency, processes):
    """Split ``jobs`` across forked worker processes; merge their results."""
    import multiprocessing
    import os
    import tempfile

    chunks: List[List] = [jobs[i::processes] for i in range(processes)]
    ctx = multiprocessing.get_context("fork" if hasattr(os, "fork") else "spawn")
    with tempfile.TemporaryDirectory(prefix="repro-loadtest-") as tmpdir:
        workers = []
        outs = []
        for i, chunk in enumerate(chunks):
            out_path = os.path.join(tmpdir, f"worker-{i}.json")
            outs.append(out_path)
            proc = ctx.Process(
                target=_worker_main,
                args=(host, port, json.dumps(chunk), concurrency, out_path),
            )
            proc.start()
            workers.append(proc)
        for proc in workers:
            proc.join()
        latencies: Dict[str, List[float]] = {}
        sources: Dict[str, int] = {}
        errors = 0
        for proc, out_path in zip(workers, outs):
            if proc.exitcode != 0 or not os.path.exists(out_path):
                errors += 1  # count a dead worker as at least one failure
                continue
            with open(out_path) as fh:
                part = json.load(fh)
            for op, samples in part["latencies"].items():
                latencies.setdefault(op, []).extend(samples)
            for source, count in part["sources"].items():
                sources[source] = sources.get(source, 0) + count
            errors += part["errors"]
    return latencies, sources, errors
