"""The plan-serving subsystem: store, service, server, client, load harness.

``repro.serve`` turns the planner/simulator/autotuner into a long-lived,
concurrent service on nothing but the standard library:

* :class:`PlanStore` — a disk-backed, content-addressed store (atomic
  writes, fsync-safe index, cross-process file locking, corruption
  quarantine) installed *under* the in-memory Session LRU via
  :func:`repro.plan.set_plan_store`, so plans and simulation summaries
  survive restarts and are shared across processes;
* :class:`PlanService` — the transport-independent core: request
  validation, session management, and response caching for the three
  operations (``plan`` / ``simulate`` / ``autotune``);
* :class:`PlanServer` — a ``ThreadingHTTPServer`` frontend with JSON
  endpoints, structured errors, graceful shutdown, and
  :mod:`repro.obs` spans+metrics;
* :class:`PlanClient` / :func:`run_load_test` — the client library and
  the concurrent load harness behind the
  ``test_serve_load_resnet50_64gpu`` BENCH entry.

Quickstart::

    from repro.serve import PlanServer, PlanClient

    with PlanServer(store="/tmp/plan-store") as server:
        client = PlanClient(server.host, server.port)
        print(client.simulate("ResNet-50", "SPD-KFAC", gpus=64)["iteration_time"])

or from the command line::

    python -m repro.experiments serve --port 8061 --store /tmp/plan-store
"""

from repro.serve.store import STORE_SCHEMA_VERSION, FileLock, PlanStore
from repro.serve.results import StoredResult, result_from_doc, result_to_doc
from repro.serve.service import SERVICE_OPS, PlanService, RequestError
from repro.serve.server import MAX_BODY_BYTES, LatencyTracker, PlanServer
from repro.serve.client import PlanClient, ServeError, wait_ready
from repro.serve.loadtest import LoadTestReport, default_workload, run_load_test

__all__ = [
    "PlanStore",
    "FileLock",
    "STORE_SCHEMA_VERSION",
    "StoredResult",
    "result_to_doc",
    "result_from_doc",
    "PlanService",
    "RequestError",
    "SERVICE_OPS",
    "PlanServer",
    "LatencyTracker",
    "MAX_BODY_BYTES",
    "PlanClient",
    "ServeError",
    "wait_ready",
    "LoadTestReport",
    "default_workload",
    "run_load_test",
]
