"""Lossless result summaries: what the store keeps of a simulation.

An :class:`~repro.core.schedule.IterationResult` carries a full
:class:`~repro.sim.Timeline` — tens of thousands of task intervals —
but every serving consumer (the HTTP endpoints, the experiments'
tables, the autotuner's ranking) reads only the *summary* surface:
``iteration_time``, the paper-category breakdown, and, for stale
strategies, the per-phase makespans and cycle weights.

:func:`result_to_doc` captures exactly that surface as a JSON document,
and :class:`StoredResult` plays it back.  Floats round-trip exactly
through JSON (``repr`` shortest-form), so a summary loaded from disk
reports **bit-identical** numbers to the simulation that produced it —
the property the frozen-paper-row tests assert with the store enabled.

A :class:`StoredResult` deliberately has no ``timeline``/``breakdown``:
accessing them raises with a pointer to re-simulation, rather than
silently serving an empty schedule.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["StoredResult", "result_to_doc", "result_from_doc"]


def result_to_doc(result) -> Dict[str, object]:
    """Serialize a (possibly amortized) iteration result's summary surface.

    Accepts an :class:`~repro.core.schedule.IterationResult`, an
    :class:`~repro.core.schedule.AmortizedIterationResult`, or an
    already-loaded :class:`StoredResult`.
    """
    doc: Dict[str, object] = {
        "algorithm": result.algorithm,
        "model": result.model,
        "iteration_time": result.iteration_time,
        "categories": sorted(result.categories().items()),
    }
    phase_times = getattr(result, "phase_times", None)
    if callable(phase_times):
        doc["phase_times"] = sorted(phase_times().items())
        doc["cycle_iterations"] = result.cycle_iterations
    return doc


def result_from_doc(doc: Dict[str, object]) -> "StoredResult":
    """Rebuild a :class:`StoredResult` from :func:`result_to_doc` output."""
    phases = doc.get("phase_times")
    return StoredResult(
        algorithm=doc["algorithm"],
        model=doc["model"],
        iteration_time=doc["iteration_time"],
        categories=dict((k, v) for k, v in doc["categories"]),
        phase_times=None if phases is None else dict((k, v) for k, v in phases),
        cycle_iterations=doc.get("cycle_iterations"),
    )


class StoredResult:
    """A simulation result played back from its stored summary.

    Duck-types the reporting surface of
    :class:`~repro.core.schedule.IterationResult` /
    :class:`~repro.core.schedule.AmortizedIterationResult`
    (``algorithm``, ``model``, ``iteration_time``, ``categories()``, and
    for stale strategies ``phase_times()`` / ``cycle_iterations``) with
    the exact floats the original simulation reported.  The full
    ``timeline`` is not retained — accessing it raises ``AttributeError``
    with a pointer to re-simulation.
    """

    __slots__ = (
        "algorithm",
        "model",
        "_iteration_time",
        "_categories",
        "_phase_times",
        "_cycle_iterations",
    )

    def __init__(
        self,
        *,
        algorithm: str,
        model: str,
        iteration_time: float,
        categories: Dict[str, float],
        phase_times: Optional[Dict[str, float]] = None,
        cycle_iterations: Optional[int] = None,
    ):
        self.algorithm = algorithm
        self.model = model
        self._iteration_time = float(iteration_time)
        self._categories = dict(categories)
        self._phase_times = None if phase_times is None else dict(phase_times)
        self._cycle_iterations = cycle_iterations

    @property
    def iteration_time(self) -> float:
        """Simulated (cycle-averaged, for stale strategies) seconds/iteration."""
        return self._iteration_time

    def categories(self) -> Dict[str, float]:
        """The six paper categories, exactly as originally simulated."""
        return dict(self._categories)

    def phase_times(self) -> Dict[str, float]:
        """Per-phase makespans of a stale-refresh cycle (if amortized)."""
        if self._phase_times is None:
            return {"refresh": self._iteration_time}
        return dict(self._phase_times)

    @property
    def cycle_iterations(self) -> int:
        """Iterations per refresh cycle (1 for non-stale strategies)."""
        return 1 if self._cycle_iterations is None else self._cycle_iterations

    @property
    def amortized(self) -> bool:
        """Whether the original result was cycle-averaged (stale refresh)."""
        return self._phase_times is not None

    @property
    def timeline(self):
        """Not retained in summaries — raises with re-simulation advice."""
        raise AttributeError(
            "StoredResult has no timeline: disk-store summaries keep only "
            "iteration_time/categories/phase_times. Re-simulate (e.g. "
            "simulate(plan.build_graph()) or a Session without a plan "
            "store) to obtain a full Timeline."
        )

    @property
    def breakdown(self):
        """Not retained in summaries — raises with re-simulation advice."""
        raise AttributeError(
            "StoredResult has no breakdown object: disk-store summaries "
            "keep only the paper-category totals (categories()). "
            "Re-simulate for the full Breakdown."
        )

    def __repr__(self) -> str:
        kind = "amortized" if self.amortized else "single-iteration"
        return (
            f"StoredResult({self.algorithm!r} x {self.model!r}, {kind}, "
            f"iteration_time={self._iteration_time:.6f})"
        )
