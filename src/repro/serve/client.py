"""A minimal, dependency-free client for the plan server.

:class:`PlanClient` speaks the server's JSON protocol over
:mod:`http.client` — one connection per request, so a single client
instance is safe to share across threads and trivially safe across
processes (the load harness does both).  Error responses raise
:class:`ServeError` carrying the structured ``code``/``message`` the
server returned.

Examples
--------
>>> from repro.serve import PlanServer, PlanClient
>>> with PlanServer() as server:
...     client = PlanClient(server.host, server.port)
...     out = client.plan("ResNet-50", "SPD-KFAC", gpus=4)
...     out["num_ranks"]
4
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional

__all__ = ["PlanClient", "ServeError", "wait_ready"]


class ServeError(Exception):
    """An error response from the server (or a transport failure).

    ``code`` and ``status`` mirror the server's structured error body;
    transport-level failures use code ``"transport"`` and status 0.
    """

    def __init__(self, code: str, message: str, status: int = 0):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = status


class PlanClient:
    """Typed access to every server endpoint.

    Parameters
    ----------
    host, port:
        The server's bound address.
    timeout:
        Per-request socket timeout in seconds (autotune cold runs can
        take a few seconds on large models; default 60).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict[str, object]:
        """One HTTP round-trip; raises :class:`ServeError` on any failure."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers = {"Content-Type": "application/json"}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServeError("transport", f"{type(exc).__name__}: {exc}")
            try:
                document = json.loads(raw) if raw else {}
            except ValueError:
                raise ServeError(
                    "transport",
                    f"non-JSON response (status {response.status})",
                    status=response.status,
                )
            if response.status >= 400:
                error = document.get("error", {}) if isinstance(document, dict) else {}
                raise ServeError(
                    error.get("code", "unknown"),
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                )
            return document
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """``GET /health``."""
        return self.request("GET", "/health")

    def stats(self) -> Dict[str, object]:
        """``GET /stats``."""
        return self.request("GET", "/stats")

    def models(self) -> list:
        """``GET /v1/models`` → sorted servable model names."""
        return self.request("GET", "/v1/models")["models"]

    def strategies(self) -> Dict[str, Dict]:
        """``GET /v1/strategies`` → preset name → axes dict."""
        return self.request("GET", "/v1/strategies")["strategies"]

    def plan(self, model: str, strategy, **params) -> Dict[str, object]:
        """``POST /v1/plan`` (kwargs: ``gpus``/``topology``/``scenario``/...)."""
        return self.request(
            "POST", "/v1/plan", {"model": model, "strategy": strategy, **params}
        )

    def simulate(self, model: str, strategy, **params) -> Dict[str, object]:
        """``POST /v1/simulate`` (same body as :meth:`plan`)."""
        return self.request(
            "POST", "/v1/simulate", {"model": model, "strategy": strategy, **params}
        )

    def autotune(self, model: str, **params) -> Dict[str, object]:
        """``POST /v1/autotune`` (kwargs: ``gpus``/``topology``/``top``/``prune``)."""
        return self.request("POST", "/v1/autotune", {"model": model, **params})

    def shutdown(self) -> Dict[str, object]:
        """``POST /shutdown`` — ask the server to stop gracefully."""
        return self.request("POST", "/shutdown", {})

    def __repr__(self) -> str:
        return f"PlanClient({self.host}:{self.port})"


def wait_ready(
    host: str, port: int, *, timeout: float = 10.0, interval: float = 0.05
) -> PlanClient:
    """Poll ``/health`` until the server answers; returns a ready client.

    Raises :class:`ServeError` if the server is not up within ``timeout``
    seconds — used by CI and the load harness to synchronise with a
    freshly forked server process.
    """
    client = PlanClient(host, port, timeout=max(interval, 1.0))
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.health()
            return PlanClient(host, port)
        except ServeError:
            if time.monotonic() >= deadline:
                raise ServeError(
                    "transport", f"server at {host}:{port} not ready after {timeout}s"
                )
            time.sleep(interval)
