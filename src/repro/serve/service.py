"""The plan service: validated request dicts in, JSON documents out.

:class:`PlanService` is the transport-independent core of the serving
subsystem — the HTTP server, the CLI, and the tests all drive the same
:meth:`PlanService.handle` entry point with plain dicts.  It owns:

* **request validation** — unknown models/strategies/topologies and
  malformed parameters raise :class:`RequestError` with a machine-
  readable code and the HTTP status the server maps it to;
* **session management** — one :class:`~repro.plan.Session` per
  (model, cluster, scenario) cell, created lazily and reused across
  requests (Sessions share the process-wide, lock-guarded plan LRU);
* **response caching** — ``plan``/``simulate`` responses ride the
  Session cache and its optional disk layer; ``autotune`` reports are
  additionally content-addressed in the same
  :class:`~repro.serve.PlanStore` (keyed on model/profile digests plus
  the search options), so a restarted server answers repeat searches
  without re-running the grid.

Every response carries the request's canonical ``digest`` so clients
can correlate answers with store entries, and ``source`` describing
where the answer came from (``"computed"``, ``"memory"``, or
``"store"``).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.models import get_model_spec
from repro.obs import recorder
from repro.plan import (
    Session,
    TrainingStrategy,
    get_plan_store,
    plan_store_key,
    strategy_registry,
)
from repro.utils.digest import content_digest

__all__ = ["PlanService", "RequestError", "SERVICE_OPS"]

#: Operations :meth:`PlanService.handle` accepts.
SERVICE_OPS = ("plan", "simulate", "autotune")

_RESPONSE_CACHE_MAXSIZE = 256

#: Handled requests between store-size checks when a byte cap is set.
_GC_CHECK_INTERVAL = 64


class RequestError(Exception):
    """A rejected request: machine-readable ``code`` + HTTP ``status``.

    ``code`` is one of ``invalid_request``, ``unknown_model``,
    ``unknown_strategy``, ``unknown_topology``, ``unknown_scenario``,
    ``unknown_op`` — stable strings clients can switch on.
    """

    def __init__(self, code: str, message: str, status: int = 400):
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status

    def to_dict(self) -> Dict[str, object]:
        """The structured error body the server returns."""
        return {"error": {"code": self.code, "message": self.message}}


def _require_type(params: Dict[str, object], key: str, types, label: str):
    value = params.get(key)
    if value is not None and not isinstance(value, types):
        raise RequestError(
            "invalid_request", f"{key!r} must be {label}, got {type(value).__name__}"
        )
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise RequestError("invalid_request", f"{key!r} must be {label}, got bool")
    return value


class PlanService:
    """Answers plan/simulate/autotune queries over shared sessions.

    Examples
    --------
    >>> service = PlanService()
    >>> out = service.handle("plan", {"model": "ResNet-50", "strategy": "SPD-KFAC", "gpus": 4})
    >>> out["model"], out["num_ranks"], out["strategy"]["placement"]
    ('ResNet-50', 4, 'lbp')
    """

    def __init__(self, store=None, *, store_max_bytes: Optional[int] = None):
        # The disk layer is process-wide (it sits under the Session LRU);
        # installing it here makes every session of this process share it.
        if store is not None:
            from repro.plan import set_plan_store

            set_plan_store(store)
        if store_max_bytes is not None and store_max_bytes < 0:
            raise ValueError(
                f"store_max_bytes must be >= 0, got {store_max_bytes}"
            )
        self._sessions: Dict[Tuple[str, object, Optional[str]], Session] = {}
        self._lock = threading.Lock()
        self._responses: Dict[str, Dict[str, object]] = {}
        self._rec = recorder()
        self._store_max_bytes = store_max_bytes
        self._gc_countdown = _GC_CHECK_INTERVAL
        # Enforce the cap on whatever the store directory already holds,
        # so a restart over a full store starts within budget.
        self.store_gc()

    # -- request resolution --------------------------------------------------

    def _resolve_cluster(self, params: Dict[str, object]):
        """(cluster argument for Session, canonical cluster token)."""
        gpus = _require_type(params, "gpus", int, "an integer GPU count")
        topology = _require_type(params, "topology", str, "a topology preset name")
        if gpus is not None and topology is not None:
            raise RequestError(
                "invalid_request", "'gpus' and 'topology' are mutually exclusive"
            )
        if topology is not None:
            from repro.topo import named_topology

            try:
                topo = named_topology(topology)
            except KeyError as exc:
                raise RequestError("unknown_topology", exc.args[0], status=404)
            return topo, {"topology": topology, "world_size": topo.world_size}
        if gpus is not None:
            if not 1 <= gpus <= 4096:
                raise RequestError(
                    "invalid_request", f"'gpus' must be in [1, 4096], got {gpus}"
                )
            return gpus, {"gpus": gpus}
        return None, {"gpus": 64}  # the paper's testbed

    def _resolve_scenario(self, params: Dict[str, object]):
        name = _require_type(params, "scenario", str, "a fault-scenario preset name")
        if name is None:
            return None
        from repro.faults import named_scenario

        try:
            return named_scenario(name)
        except KeyError as exc:
            raise RequestError("unknown_scenario", exc.args[0], status=404)

    def _resolve_strategy(self, params: Dict[str, object]) -> TrainingStrategy:
        strategy = params.get("strategy")
        if isinstance(strategy, str):
            try:
                return strategy_registry[strategy]
            except KeyError as exc:
                raise RequestError("unknown_strategy", exc.args[0], status=404)
        if isinstance(strategy, dict):
            try:
                return TrainingStrategy.from_dict(strategy)
            except (TypeError, ValueError) as exc:
                raise RequestError("invalid_strategy", str(exc))
        raise RequestError(
            "invalid_request",
            "'strategy' is required: a registered name or an axes dict",
        )

    def _session_for(self, params: Dict[str, object]) -> Tuple[Session, Dict]:
        model = params.get("model")
        if not isinstance(model, str):
            raise RequestError("invalid_request", "'model' (string) is required")
        cluster, cluster_token = self._resolve_cluster(params)
        scenario = self._resolve_scenario(params)
        try:
            spec = get_model_spec(model)
        except KeyError as exc:
            raise RequestError("unknown_model", exc.args[0], status=404)
        key = (
            spec.name,
            tuple(sorted(cluster_token.items())),
            None if scenario is None else scenario.digest(),
        )
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = Session(spec, cluster, scenario=scenario)
                self._sessions[key] = session
        return session, cluster_token

    # -- operations ----------------------------------------------------------

    def handle(self, op: str, params: Dict[str, object]) -> Dict[str, object]:
        """Dispatch one validated operation; returns the response body."""
        if not isinstance(params, dict):
            raise RequestError("invalid_request", "request body must be a JSON object")
        try:
            if op == "plan":
                return self.plan(params)
            if op == "simulate":
                return self.simulate(params)
            if op == "autotune":
                return self.autotune(params)
        finally:
            self._maybe_gc()
        raise RequestError(
            "unknown_op", f"unknown operation {op!r}; one of {SERVICE_OPS}", status=404
        )

    def store_gc(self) -> Optional[Dict[str, int]]:
        """Evict oldest store entries down to the configured byte cap.

        A no-op (returning ``None``) when no cap is configured, no store
        is installed, or the store predates :meth:`PlanStore.gc`.
        """
        if self._store_max_bytes is None:
            return None
        store = get_plan_store()
        if store is None or not hasattr(store, "gc"):
            return None
        outcome = store.gc(max_bytes=self._store_max_bytes)
        if outcome["evicted"]:
            self._rec.count("serve.store_gc_evictions", outcome["evicted"])
        return outcome

    def _maybe_gc(self) -> None:
        """Periodic cap check: one GC pass every ``_GC_CHECK_INTERVAL`` ops."""
        if self._store_max_bytes is None:
            return
        with self._lock:
            self._gc_countdown -= 1
            if self._gc_countdown > 0:
                return
            self._gc_countdown = _GC_CHECK_INTERVAL
        self.store_gc()

    def _request_digest(self, session: Session, strategy: TrainingStrategy) -> str:
        profile = session.profile_for(strategy)
        scenario = session.scenario
        return plan_store_key(
            session.spec,
            strategy,
            profile,
            None if scenario is None else scenario.digest(),
        )

    def plan(self, params: Dict[str, object]) -> Dict[str, object]:
        """Resolve a plan; body: model, strategy, gpus|topology, include_plan."""
        session, cluster_token = self._session_for(params)
        strategy = self._resolve_strategy(params)
        include_plan = bool(params.get("include_plan", False))
        source = _SourceProbe()
        plan = session.plan(strategy)
        response = {
            "digest": self._request_digest(session, strategy),
            "model": session.model,
            "cluster": cluster_token,
            "strategy_name": strategy.name,
            "strategy": strategy.to_dict(),
            "num_ranks": plan.num_ranks,
            "plan_digest": plan.digest(),
            "predicted_makespan": plan.predicted_makespan,
            "breakdown": plan.breakdown_dict(),
            "task_counts": dict(plan.task_counts),
            "summary": plan.summary(),
            "source": source.resolve(),
        }
        if include_plan:
            response["plan"] = plan.to_dict()
        return response

    def simulate(self, params: Dict[str, object]) -> Dict[str, object]:
        """Simulate one iteration; same body as ``plan``."""
        session, cluster_token = self._session_for(params)
        strategy = self._resolve_strategy(params)
        source = _SourceProbe()
        result = session.simulate(strategy)
        phase_times = getattr(result, "phase_times", None)
        return {
            "digest": self._request_digest(session, strategy),
            "model": session.model,
            "cluster": cluster_token,
            "strategy_name": strategy.name,
            "iteration_time": result.iteration_time,
            "categories": result.categories(),
            "phase_times": phase_times() if callable(phase_times) else None,
            "cycle_iterations": getattr(result, "cycle_iterations", 1),
            "source": source.resolve(),
        }

    def autotune(self, params: Dict[str, object]) -> Dict[str, object]:
        """Grid-search the cluster; body: model, gpus|topology, top, prune."""
        session, cluster_token = self._session_for(params)
        if session.scenario is not None:
            raise RequestError(
                "invalid_request",
                "autotune over fault scenarios is not served; drop 'scenario'",
            )
        top = params.get("top", 5)
        if isinstance(top, bool) or not isinstance(top, int) or not 1 <= top <= 100:
            raise RequestError(
                "invalid_request", f"'top' must be an integer in [1, 100], got {top!r}"
            )
        prune = params.get("prune", True)
        if not isinstance(prune, bool):
            raise RequestError("invalid_request", "'prune' must be a boolean")

        digest = content_digest(
            {
                "kind": "autotune",
                "model": session.spec.digest(),
                "profile": session.profile_for("SPD-KFAC").digest(),
                "cluster": cluster_token,
                "top": top,
                "prune": prune,
            }
        )
        cached = self._response_get(digest)
        if cached is not None:
            return {**cached, "digest": digest, "source": "memory"}
        store = get_plan_store()
        if store is not None:
            doc = store.get(digest)
            if isinstance(doc, dict):
                self._response_put(digest, doc)
                return {**doc, "digest": digest, "source": "store"}

        report = session.autotune(prune=prune)
        best = report.best
        response = {
            "model": report.model,
            "cluster": cluster_token,
            "world_size": report.world_size,
            "objective": report.objective,
            "stats": dict(report.stats),
            "best": best.to_dict(),
            "best_preset": list(report.best_preset),
            "speedup_over_presets": report.speedup_over_presets,
            "candidates": [o.to_dict() for o in report.outcomes[:top]],
            "text": report.to_text(top_k=top),
        }
        self._response_put(digest, response)
        if store is not None:
            store.put(digest, response, kind="autotune")
        return {**response, "digest": digest, "source": "computed"}

    # -- response cache ------------------------------------------------------

    def _response_get(self, digest: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._responses.get(digest)

    def _response_put(self, digest: str, response: Dict[str, object]) -> None:
        with self._lock:
            if len(self._responses) >= _RESPONSE_CACHE_MAXSIZE:
                self._responses.pop(next(iter(self._responses)))
            self._responses[digest] = response

    def stats(self) -> Dict[str, object]:
        """Cache/store/session statistics (the ``/stats`` endpoint body)."""
        from repro.plan import cache_info

        store = get_plan_store()
        with self._lock:
            sessions = len(self._sessions)
            responses = len(self._responses)
        return {
            "sessions": sessions,
            "autotune_responses": responses,
            "plan_cache": cache_info(),
            "store": None if store is None else store.stats(),
        }


class _SourceProbe:
    """Classify where an answer came from by cache-counter deltas.

    Snapshot the shared cache counters before the call; afterwards,
    :meth:`resolve` reports ``"memory"`` (LRU hit), ``"store"`` (disk
    hit), or ``"computed"``.  Under concurrent traffic the deltas can
    mix several requests' lookups; the label then reflects the cheapest
    source that *could* have served it (memory first) — best-effort
    telemetry, never load-bearing.
    """

    def __init__(self):
        from repro.plan import cache_info

        self._before = cache_info()

    def resolve(self) -> str:
        from repro.plan import cache_info

        after = cache_info()
        if after["hits"] > self._before["hits"]:
            return "memory"
        if after["store_hits"] > self._before["store_hits"]:
            return "store"
        return "computed"
