"""Registry of the paper's evaluated models (Table II)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.densenet import densenet201_spec
from repro.models.inception import inceptionv4_spec
from repro.models.resnet import resnet50_spec, resnet152_spec
from repro.models.spec import ModelSpec

#: Canonical name -> spec factory, in the paper's table order.
PAPER_MODELS: Dict[str, Callable[[], ModelSpec]] = {
    "ResNet-50": resnet50_spec,
    "ResNet-152": resnet152_spec,
    "DenseNet-201": densenet201_spec,
    "Inception-v4": inceptionv4_spec,
}


def _normalize(name: str) -> str:
    """Case- and punctuation-insensitive key: ``resnet50 == ResNet-50``."""
    return "".join(ch for ch in name.lower() if ch.isalnum())


def get_model_spec(name: str) -> ModelSpec:
    """Build the spec for one of the paper's models by name.

    Lookup ignores case and punctuation, so ``"resnet50"``,
    ``"ResNet-50"`` and ``"RESNET 50"`` all resolve to the same spec.
    """
    wanted = _normalize(name)
    for key, factory in PAPER_MODELS.items():
        if _normalize(key) == wanted:
            return factory()
    raise KeyError(f"unknown model {name!r}; available: {sorted(PAPER_MODELS)}")
