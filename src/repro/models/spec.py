"""Layer- and model-level dimension specs.

A :class:`LayerSpec` captures everything the schedulers and cost models
need to know about one K-FAC-preconditioned layer:

* ``a_dim`` — side of the Kronecker factor ``A_{l-1}``: for a conv layer
  this is ``C_in * kh * kw`` (the KFC patch expansion, Grosse & Martens),
  plus one if the layer has a bias (homogeneous coordinate); for a linear
  layer ``in_features (+1)``.
* ``g_dim`` — side of ``G_l``: the number of output channels/features.
* per-sample forward FLOPs and factor-construction FLOPs.

The paper's Fig. 3 (tensor-size distribution), Table II (#A/#G elements)
and all communication volumes derive from these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.perf.models import symmetric_elements
from repro.utils.digest import content_digest


@dataclass(frozen=True)
class LayerSpec:
    """Dimensions of one K-FAC layer (conv or linear).

    ``spatial_out`` is the number of output spatial positions per sample
    (``H_out * W_out``; 1 for linear layers): it scales both the conv
    GEMM FLOPs and the number of rows entering the ``A``/``G`` factor
    products.
    """

    name: str
    kind: str  # "conv" | "linear"
    in_dim: int  # C_in (conv) or in_features (linear)
    out_dim: int  # C_out (conv) or out_features (linear)
    kernel: Tuple[int, int] = (1, 1)
    spatial_out: int = 1
    has_bias: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "linear"):
            raise ValueError(f"kind must be 'conv' or 'linear', got {self.kind!r}")
        if min(self.in_dim, self.out_dim, self.spatial_out) < 1:
            raise ValueError(f"invalid dimensions in layer {self.name!r}")
        if min(self.kernel) < 1:
            raise ValueError(f"invalid kernel in layer {self.name!r}")
        if self.kind == "linear" and (self.kernel != (1, 1) or self.spatial_out != 1):
            raise ValueError(f"linear layer {self.name!r} cannot have kernel/spatial extent")

    # -- Kronecker dimensions ------------------------------------------------

    @property
    def a_dim(self) -> int:
        """Side of the Kronecker factor ``A_{l-1}``."""
        base = self.in_dim * self.kernel[0] * self.kernel[1]
        return base + 1 if self.has_bias else base

    @property
    def g_dim(self) -> int:
        """Side of the Kronecker factor ``G_l``."""
        return self.out_dim

    @property
    def a_elements(self) -> int:
        """Communicated elements of the symmetric ``A`` factor."""
        return symmetric_elements(self.a_dim)

    @property
    def g_elements(self) -> int:
        """Communicated elements of the symmetric ``G`` factor."""
        return symmetric_elements(self.g_dim)

    # -- parameter & FLOPs accounting -----------------------------------------

    @property
    def num_params(self) -> int:
        """Trainable parameters (weights + bias)."""
        weights = self.in_dim * self.out_dim * self.kernel[0] * self.kernel[1]
        return weights + (self.out_dim if self.has_bias else 0)

    @property
    def forward_flops(self) -> float:
        """Per-sample forward multiply-add FLOPs (2 per MAC)."""
        macs = self.in_dim * self.kernel[0] * self.kernel[1] * self.out_dim * self.spatial_out
        return 2.0 * macs

    @property
    def backward_flops(self) -> float:
        """Per-sample backward FLOPs (grad-input + grad-weight GEMMs ~ 2x fwd)."""
        return 2.0 * self.forward_flops

    def factor_a_flops(self, batch_size: int) -> float:
        """FLOPs of ``A = Omega^T Omega`` over a batch (Eq. 7 expansion)."""
        rows = batch_size * self.spatial_out
        return 2.0 * rows * self.a_dim**2

    def factor_g_flops(self, batch_size: int) -> float:
        """FLOPs of ``G = g^T g`` over a batch (Eq. 8 expansion)."""
        rows = batch_size * self.spatial_out
        return 2.0 * rows * self.g_dim**2

    def precondition_flops(self) -> float:
        """FLOPs of ``G^{-1} grad A^{-1}`` for this layer."""
        rows, cols = self.g_dim, self.a_dim
        return 2.0 * (rows * rows * cols + rows * cols * cols)


@dataclass(frozen=True)
class ModelSpec:
    """Ordered K-FAC layer table for one CNN.

    ``layers`` are in forward-traversal order — the order the factors
    ``A_0 .. A_{L-1}`` become available during the forward pass; the
    ``G_L .. G_1`` order of the backward pass is the reverse.
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    batch_size: int
    input_size: int = 224
    extra_params: int = 0  # non-K-FAC parameters (BatchNorm scales/shifts)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a model needs at least one layer")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    @property
    def num_layers(self) -> int:
        """Number of K-FAC-preconditioned layers (Table II '# Layers')."""
        return len(self.layers)

    @property
    def num_params(self) -> int:
        """Total trainable parameters, including non-K-FAC ones."""
        return sum(layer.num_params for layer in self.layers) + self.extra_params

    @property
    def total_a_elements(self) -> int:
        """Table II '# As': upper-triangle elements over all ``A`` factors."""
        return sum(layer.a_elements for layer in self.layers)

    @property
    def total_g_elements(self) -> int:
        """Table II '# Gs': upper-triangle elements over all ``G`` factors."""
        return sum(layer.g_elements for layer in self.layers)

    def digest(self) -> str:
        """Stable 16-hex-char content hash of the full layer table.

        Covers every dimension the planners and cost models consume
        (layer kinds, channel/kernel/spatial extents, biases, batch
        size), so two specs with equal digests plan and simulate
        identically.  Stable across processes and Python versions
        (sorted-key canonical JSON + sha256).
        """
        return content_digest(
            {
                "kind": "model_spec",
                "name": self.name,
                "batch_size": self.batch_size,
                "input_size": self.input_size,
                "extra_params": self.extra_params,
                "layers": [
                    {
                        "name": layer.name,
                        "kind": layer.kind,
                        "in_dim": layer.in_dim,
                        "out_dim": layer.out_dim,
                        "kernel": list(layer.kernel),
                        "spatial_out": layer.spatial_out,
                        "has_bias": layer.has_bias,
                    }
                    for layer in self.layers
                ],
            }
        )

    def factor_dims(self) -> List[int]:
        """All 2L Kronecker dimensions, interleaved [a_1, g_1, a_2, g_2, ...]."""
        dims: List[int] = []
        for layer in self.layers:
            dims.append(layer.a_dim)
            dims.append(layer.g_dim)
        return dims

    def tensor_size_distribution(self) -> List[int]:
        """Communicated element count of every factor (Fig. 3 scatter data)."""
        sizes: List[int] = []
        for layer in self.layers:
            sizes.append(layer.a_elements)
            sizes.append(layer.g_elements)
        return sizes

    def forward_flops(self) -> float:
        """Per-sample forward FLOPs over all K-FAC layers."""
        return sum(layer.forward_flops for layer in self.layers)
