"""Small trainable networks used for the numerical K-FAC validation.

These are real :class:`repro.nn.Module` networks sized so that exact
Fisher-block computations and multi-rank distributed steps run in
milliseconds inside tests.
"""

from __future__ import annotations

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    Tanh,
)
from repro.utils.rng import SeedLike, new_rng


def make_mlp(
    in_features: int = 10,
    hidden: int = 16,
    num_classes: int = 3,
    depth: int = 2,
    rng: SeedLike = None,
) -> Sequential:
    """Fully-connected classifier with ``depth`` hidden layers."""
    rng = new_rng(rng)
    layers = [Linear(in_features, hidden, rng=rng), ReLU()]
    for _ in range(depth - 1):
        layers += [Linear(hidden, hidden, rng=rng), ReLU()]
    layers.append(Linear(hidden, num_classes, rng=rng))
    return Sequential(*layers)


def make_small_cnn(
    in_channels: int = 1,
    num_classes: int = 4,
    image_size: int = 8,
    rng: SeedLike = None,
) -> Sequential:
    """Tiny conv net: two conv blocks, global pooling, linear head."""
    rng = new_rng(rng)
    del image_size  # architecture is resolution-agnostic
    return Sequential(
        Conv2d(in_channels, 8, kernel_size=3, padding=1, rng=rng),
        BatchNorm2d(8),
        ReLU(),
        Conv2d(8, 16, kernel_size=3, stride=2, padding=1, rng=rng),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(16, num_classes, rng=rng),
    )


def make_residual_mlp(
    in_features: int = 10,
    hidden: int = 16,
    num_classes: int = 3,
    rng: SeedLike = None,
) -> Sequential:
    """MLP with one residual block, exercising non-chain topologies."""
    rng = new_rng(rng)
    block = Sequential(Linear(hidden, hidden, rng=rng), Tanh(), Linear(hidden, hidden, rng=rng))
    return Sequential(
        Linear(in_features, hidden, rng=rng),
        ReLU(),
        Residual(block),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )
