"""Helper for constructing :class:`ModelSpec` tables layer by layer.

Tracks the spatial resolution through the network so each
:class:`LayerSpec` records its output spatial extent (needed for FLOPs
and factor-construction costs); channel bookkeeping stays at the call
sites where the architecture is described.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.models.spec import LayerSpec, ModelSpec

PaddingLike = Union[str, int, Tuple[int, int]]


def _axis_out(size: int, kernel: int, stride: int, padding: PaddingLike) -> int:
    if padding == "same":
        return math.ceil(size / stride)
    if padding == "valid":
        pad = 0
    elif isinstance(padding, int):
        pad = padding
    else:
        raise ValueError(f"unsupported padding {padding!r}")
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"layer produces empty output: size={size} kernel={kernel} stride={stride}")
    return out


@dataclass
class SpecBuilder:
    """Accumulates layers while tracking the running spatial resolution."""

    model_name: str
    batch_size: int
    input_size: int
    layers: List[LayerSpec] = field(default_factory=list)
    extra_params: int = 0

    def __post_init__(self) -> None:
        self._h = self.input_size
        self._w = self.input_size

    @property
    def spatial(self) -> Tuple[int, int]:
        """Current (H, W) resolution."""
        return (self._h, self._w)

    def conv(
        self,
        name: str,
        in_ch: int,
        out_ch: int,
        kernel: Union[int, Tuple[int, int]],
        stride: int = 1,
        padding: PaddingLike = "same",
        batch_norm: bool = True,
        update_spatial: bool = True,
    ) -> LayerSpec:
        """Append a conv layer; returns its spec.

        ``update_spatial=False`` records a parallel branch without
        advancing the trunk resolution (used inside Inception cells,
        where only the cell as a whole changes resolution).
        """
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        h_out = _axis_out(self._h, kh, stride, padding)
        w_out = _axis_out(self._w, kw, stride, padding)
        spec = LayerSpec(
            name=name,
            kind="conv",
            in_dim=in_ch,
            out_dim=out_ch,
            kernel=(kh, kw),
            spatial_out=h_out * w_out,
            has_bias=False,
        )
        self.layers.append(spec)
        if batch_norm:
            self.extra_params += 2 * out_ch
        if update_spatial:
            self._h, self._w = h_out, w_out
        return spec

    def pool(self, kernel: int, stride: int, padding: PaddingLike = "valid") -> None:
        """Record a (parameter-free) pooling layer's effect on resolution."""
        self._h = _axis_out(self._h, kernel, stride, padding)
        self._w = _axis_out(self._w, kernel, stride, padding)

    def set_spatial(self, h: int, w: int) -> None:
        """Force the trunk resolution (after a multi-branch cell)."""
        self._h, self._w = h, w

    def linear(self, name: str, in_features: int, out_features: int, bias: bool = True) -> LayerSpec:
        """Append a fully-connected layer."""
        spec = LayerSpec(
            name=name, kind="linear", in_dim=in_features, out_dim=out_features, has_bias=bias
        )
        self.layers.append(spec)
        return spec

    def build(self) -> ModelSpec:
        """Finalize into an immutable :class:`ModelSpec`."""
        return ModelSpec(
            name=self.model_name,
            layers=tuple(self.layers),
            batch_size=self.batch_size,
            input_size=self.input_size,
            extra_params=self.extra_params,
        )
