"""Model zoo: architecture specs for the paper's CNNs + small trainable nets.

Every experiment in the paper depends on the per-layer *Kronecker
dimensions* of the evaluated CNNs (factor sizes drive communication
traffic and inverse cost) and per-layer FLOPs (compute times).  The
:class:`~repro.models.spec.ModelSpec` tables built here encode exactly
that, for the four models of Table II:

========== ======== ========= ===========
model      # layers batch size  source
========== ======== ========= ===========
ResNet-50       54        32   He et al. 2016
ResNet-152     156         8   He et al. 2016
DenseNet-201   201        16   Huang et al. 2017
Inception-v4   150        16   Szegedy et al. 2017
========== ======== ========= ===========

The small nets in :mod:`repro.models.small` are real, trainable
:class:`repro.nn.Module` networks used for the numerical K-FAC validation.
"""

from repro.models.spec import LayerSpec, ModelSpec
from repro.models.resnet import resnet50_spec, resnet152_spec
from repro.models.densenet import densenet201_spec
from repro.models.inception import inceptionv4_spec
from repro.models.small import make_mlp, make_small_cnn, make_residual_mlp
from repro.models.catalog import PAPER_MODELS, get_model_spec

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "resnet50_spec",
    "resnet152_spec",
    "densenet201_spec",
    "inceptionv4_spec",
    "make_mlp",
    "make_small_cnn",
    "make_residual_mlp",
    "PAPER_MODELS",
    "get_model_spec",
]
