"""DenseNet-201 layer spec (Huang et al., CVPR 2017).

Growth rate k=32, bottleneck width 4k=128, block config [6, 12, 48, 32]:
1 stem conv + 2x98 dense-layer convs + 3 transition convs + fc = 201
K-FAC layers, matching Table II.
"""

from __future__ import annotations

from repro.models.builder import SpecBuilder
from repro.models.spec import ModelSpec

GROWTH_RATE = 32
BOTTLENECK_WIDTH = 4 * GROWTH_RATE
BLOCK_CONFIG = (6, 12, 48, 32)


def densenet201_spec() -> ModelSpec:
    """DenseNet-201 with the paper's per-GPU batch size 16 (Table II)."""
    b = SpecBuilder(model_name="DenseNet-201", batch_size=16, input_size=224)
    b.conv("conv1", 3, 64, kernel=7, stride=2, padding=3)
    b.pool(kernel=3, stride=2, padding=1)

    channels = 64
    for block_idx, num_layers in enumerate(BLOCK_CONFIG, start=1):
        for layer_idx in range(num_layers):
            prefix = f"block{block_idx}.layer{layer_idx}"
            b.conv(f"{prefix}.conv1x1", channels, BOTTLENECK_WIDTH, kernel=1, stride=1, padding=0)
            b.conv(f"{prefix}.conv3x3", BOTTLENECK_WIDTH, GROWTH_RATE, kernel=3, stride=1, padding=1)
            channels += GROWTH_RATE
        if block_idx < len(BLOCK_CONFIG):
            channels //= 2
            b.conv(f"transition{block_idx}", channels * 2, channels, kernel=1, stride=1, padding=0)
            b.pool(kernel=2, stride=2)

    b.linear("fc", channels, 1000, bias=True)
    return b.build()
