"""Inception-v4 layer spec (Szegedy et al., AAAI 2017).

Conv counts per component: stem 11, 4x Inception-A (7 each), Reduction-A
4, 7x Inception-B (10 each), Reduction-B 6, 3x Inception-C (10 each),
plus the classifier: 11 + 28 + 4 + 70 + 6 + 30 + 1(fc) = 150 K-FAC
layers, matching Table II.  The canonical input resolution is 299x299;
Kronecker dimensions are resolution-independent, only per-layer FLOPs
scale with it.
"""

from __future__ import annotations

from repro.models.builder import SpecBuilder
from repro.models.spec import ModelSpec


def inceptionv4_spec() -> ModelSpec:
    """Inception-v4 with the paper's per-GPU batch size 16 (Table II)."""
    b = SpecBuilder(model_name="Inception-v4", batch_size=16, input_size=299)

    # -- stem (11 convs) ------------------------------------------------------
    b.conv("stem.conv1", 3, 32, kernel=3, stride=2, padding="valid")  # 149
    b.conv("stem.conv2", 32, 32, kernel=3, padding="valid")  # 147
    b.conv("stem.conv3", 32, 64, kernel=3, padding=1)  # 147
    # mixed 3a: maxpool || conv stride 2 -> 73, concat 64+96=160
    b.conv("stem.mixed3a.conv", 64, 96, kernel=3, stride=2, padding="valid")
    # mixed 4a, two branches at 73x73, both ending 96 channels (concat 192)
    b.conv("stem.mixed4a.b1.conv1x1", 160, 64, kernel=1, update_spatial=False)
    b.conv("stem.mixed4a.b1.conv3x3", 64, 96, kernel=3, padding="valid", update_spatial=False)
    b.conv("stem.mixed4a.b2.conv1x1", 160, 64, kernel=1, update_spatial=False)
    b.conv("stem.mixed4a.b2.conv1x7", 64, 64, kernel=(1, 7), update_spatial=False)
    b.conv("stem.mixed4a.b2.conv7x1", 64, 64, kernel=(7, 1), update_spatial=False)
    b.conv("stem.mixed4a.b2.conv3x3", 64, 96, kernel=3, padding="valid")
    # mixed 5a: conv stride 2 || maxpool -> 35 (at 299 input), concat 384
    b.conv("stem.mixed5a.conv", 192, 192, kernel=3, stride=2, padding="valid")

    # -- 4x Inception-A at 384 channels (7 convs each) -------------------------
    for i in range(4):
        p = f"inceptionA{i}"
        b.conv(f"{p}.b1.conv1x1", 384, 96, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv1x1", 384, 64, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv3x3", 64, 96, kernel=3, update_spatial=False)
        b.conv(f"{p}.b3.conv1x1", 384, 64, kernel=1, update_spatial=False)
        b.conv(f"{p}.b3.conv3x3a", 64, 96, kernel=3, update_spatial=False)
        b.conv(f"{p}.b3.conv3x3b", 96, 96, kernel=3, update_spatial=False)
        b.conv(f"{p}.b4.conv1x1", 384, 96, kernel=1, update_spatial=False)

    # -- Reduction-A: 384 -> 1024 (4 convs) ------------------------------------
    b.conv("reductionA.b1.conv3x3", 384, 384, kernel=3, stride=2, padding="valid", update_spatial=False)
    b.conv("reductionA.b2.conv1x1", 384, 192, kernel=1, update_spatial=False)
    b.conv("reductionA.b2.conv3x3a", 192, 224, kernel=3, update_spatial=False)
    b.conv("reductionA.b2.conv3x3b", 224, 256, kernel=3, stride=2, padding="valid")

    # -- 7x Inception-B at 1024 channels (10 convs each) ------------------------
    for i in range(7):
        p = f"inceptionB{i}"
        b.conv(f"{p}.b1.conv1x1", 1024, 384, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv1x1", 1024, 192, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv1x7", 192, 224, kernel=(1, 7), update_spatial=False)
        b.conv(f"{p}.b2.conv7x1", 224, 256, kernel=(7, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv1x1", 1024, 192, kernel=1, update_spatial=False)
        b.conv(f"{p}.b3.conv7x1a", 192, 192, kernel=(7, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv1x7a", 192, 224, kernel=(1, 7), update_spatial=False)
        b.conv(f"{p}.b3.conv7x1b", 224, 224, kernel=(7, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv1x7b", 224, 256, kernel=(1, 7), update_spatial=False)
        b.conv(f"{p}.b4.conv1x1", 1024, 128, kernel=1, update_spatial=False)

    # -- Reduction-B: 1024 -> 1536 (6 convs) ------------------------------------
    b.conv("reductionB.b1.conv1x1", 1024, 192, kernel=1, update_spatial=False)
    b.conv("reductionB.b1.conv3x3", 192, 192, kernel=3, stride=2, padding="valid", update_spatial=False)
    b.conv("reductionB.b2.conv1x1", 1024, 256, kernel=1, update_spatial=False)
    b.conv("reductionB.b2.conv1x7", 256, 256, kernel=(1, 7), update_spatial=False)
    b.conv("reductionB.b2.conv7x1", 256, 320, kernel=(7, 1), update_spatial=False)
    b.conv("reductionB.b2.conv3x3", 320, 320, kernel=3, stride=2, padding="valid")

    # -- 3x Inception-C at 1536 channels (10 convs each) -------------------------
    for i in range(3):
        p = f"inceptionC{i}"
        b.conv(f"{p}.b1.conv1x1", 1536, 256, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv1x1", 1536, 384, kernel=1, update_spatial=False)
        b.conv(f"{p}.b2.conv1x3", 384, 256, kernel=(1, 3), update_spatial=False)
        b.conv(f"{p}.b2.conv3x1", 384, 256, kernel=(3, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv1x1", 1536, 384, kernel=1, update_spatial=False)
        b.conv(f"{p}.b3.conv1x3", 384, 448, kernel=(1, 3), update_spatial=False)
        b.conv(f"{p}.b3.conv3x1", 448, 512, kernel=(3, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv3x1out", 512, 256, kernel=(3, 1), update_spatial=False)
        b.conv(f"{p}.b3.conv1x3out", 512, 256, kernel=(1, 3), update_spatial=False)
        b.conv(f"{p}.b4.conv1x1", 1536, 256, kernel=1, update_spatial=False)

    b.linear("fc", 1536, 1000, bias=True)
    return b.build()
