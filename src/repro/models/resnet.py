"""ResNet-50 / ResNet-152 layer specs (He et al., CVPR 2016).

Bottleneck counts: ResNet-50 uses blocks [3, 4, 6, 3] (53 convs + fc =
54 K-FAC layers), ResNet-152 uses [3, 8, 36, 3] (155 convs + fc = 156),
matching Table II of the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.models.builder import SpecBuilder
from repro.models.spec import ModelSpec


def _resnet_spec(name: str, blocks: Sequence[int], batch_size: int) -> ModelSpec:
    b = SpecBuilder(model_name=name, batch_size=batch_size, input_size=224)
    b.conv("conv1", 3, 64, kernel=7, stride=2, padding=3)
    b.pool(kernel=3, stride=2, padding=1)

    in_ch = 64
    stage_mids = (64, 128, 256, 512)
    for stage, (mid, num_blocks) in enumerate(zip(stage_mids, blocks), start=1):
        out_ch = mid * 4
        for block in range(num_blocks):
            stride = 2 if (stage > 1 and block == 0) else 1
            prefix = f"stage{stage}.block{block}"
            b.conv(f"{prefix}.conv1", in_ch, mid, kernel=1, stride=1, padding=0)
            b.conv(f"{prefix}.conv2", mid, mid, kernel=3, stride=stride, padding=1)
            b.conv(f"{prefix}.conv3", mid, out_ch, kernel=1, stride=1, padding=0)
            if block == 0:
                # Projection shortcut runs in parallel with the main path
                # at the *input* resolution of the block; it does not
                # advance the trunk (already advanced by conv2's stride).
                b.conv(
                    f"{prefix}.downsample",
                    in_ch,
                    out_ch,
                    kernel=1,
                    stride=1,
                    padding=0,
                    update_spatial=False,
                )
            in_ch = out_ch

    b.linear("fc", 2048, 1000, bias=True)
    return b.build()


def resnet50_spec() -> ModelSpec:
    """ResNet-50 with the paper's per-GPU batch size 32 (Table II)."""
    return _resnet_spec("ResNet-50", blocks=(3, 4, 6, 3), batch_size=32)


def resnet152_spec() -> ModelSpec:
    """ResNet-152 with the paper's per-GPU batch size 8 (Table II)."""
    return _resnet_spec("ResNet-152", blocks=(3, 8, 36, 3), batch_size=8)
