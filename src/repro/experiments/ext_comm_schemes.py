"""Extension: COMM_OPT / MEM_OPT communication schemes vs paper SPD-KFAC.

The paper broadcasts each layer's packed inverse factors from their
owner and preconditions everywhere.  Pauloski et al.'s distributed
K-FAC [arXiv:2007.00784] reorganize exactly this stage two ways:
COMM_OPT preconditions with the resident (possibly stale-by-a-refresh)
inverses and appends the refresh after the weight update, taking the
inverse stage off the critical path at unchanged wire volume; MEM_OPT
keeps each layer's inverses on one owner, preconditions there, and
broadcasts the ``num_params``-sized preconditioned gradient every
iteration — less wire per broadcast for the paper's large conv layers
(``d(d+1)/2`` packed inverse elements vs ``num_params``), but no
interval amortization ever.

This sweep prices all three schemes on SPD-KFAC's axes for every paper
model on the flat paper fabric, a 4-rack ethernet-spine cluster, and a
bandwidth-heterogeneous NVLink+PCIe cluster, reporting iteration time,
speedup over paper SPD-KFAC, and wire bytes per iteration.

Expected shape: MEM_OPT wins on every cell, largest where
inverse-broadcast bytes dominate and the interconnect is starved — the
ethernet spine — because every paper model's packed inverse volume
exceeds its parameter count.  COMM_OPT's schedule only differs from the
paper's in refresh iterations, and the SPD-KFAC preset refreshes every
iteration, so here it pays the appended refresh tail on every iteration
and loses slightly; its payoff is stale refresh intervals, where the
steady-state iterations (identical to the paper's) dominate the cycle.
Numeric-accuracy effects of stale preconditioning are out of scope (the
simulator prices time, not convergence); the notes say so explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.autotune import plan_traffic
from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.perf import ClusterPerfProfile
from repro.plan import Session, strategy_registry
from repro.topo import ClusterTopology, named_topology

#: The swept 64-GPU cluster shapes (differences are purely topological).
SCENARIO_NAMES = ("flat", "multi-rack", "heterogeneous")

#: Communication-scheme variants on the SPD-KFAC preset, in report order.
VARIANTS: Tuple[str, ...] = ("paper", "comm_opt", "mem_opt")

#: The headline scheme the notes single out.
HEADLINE_VARIANT = "mem_opt"


def default_scenarios() -> Tuple[ClusterTopology, ...]:
    """The default 64-GPU topology sweep."""
    return tuple(named_topology(name) for name in SCENARIO_NAMES)


def run(
    profile: Optional[ClusterPerfProfile] = None,
    scenarios: Optional[Sequence[ClusterTopology]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Price every (model, topology, scheme) cell against paper SPD-KFAC."""
    del profile  # each cell derives its profiles from the topology
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    models = tuple(models) if models is not None else PAPER_MODEL_NAMES

    result = ExperimentResult(
        experiment_id="ext_comm_schemes",
        title=(
            "Extension: COMM_OPT / MEM_OPT communication schemes vs paper SPD-KFAC"
        ),
        columns=(
            "model", "topology", "scheme", "time(s)", "speedup", "wire(MB/iter)",
        ),
    )
    spd = strategy_registry["SPD-KFAC"]
    headline: Dict[Tuple[str, str], float] = {}
    for topo in scenarios:
        for model in models:
            session = Session(model, topo)
            base_time = None
            for label in VARIANTS:
                strategy = spd.but(name=f"SPD-KFAC[{label}]", comm_scheme=label)
                plan = session.plan(strategy)
                time = plan.predicted_makespan
                if label == "paper":
                    base_time = time
                speedup = base_time / time
                wire_mb = plan_traffic(plan).total_bytes() / 1e6
                result.rows.append(
                    {
                        "model": model,
                        "topology": topo.name,
                        "scheme": label,
                        "time(s)": time,
                        "speedup": speedup,
                        "wire(MB/iter)": wire_mb,
                    }
                )
                if label == HEADLINE_VARIANT:
                    headline[(model, topo.name)] = speedup

    if headline:
        best_cell = max(headline, key=headline.get)
        worst_cell = min(headline, key=headline.get)
        result.notes.append(
            f"{HEADLINE_VARIANT} (owner-side preconditioning with per-layer "
            "preconditioned-gradient broadcasts) beats paper SPD-KFAC on "
            f"{sum(s > 1.0 for s in headline.values())}/{len(headline)} "
            f"cells: from {headline[worst_cell]:.3f}x on {worst_cell[0]} @ "
            f"{worst_cell[1]} to {headline[best_cell]:.3f}x on "
            f"{best_cell[0]} @ {best_cell[1]}."
        )
    result.notes.append(
        "'paper' is bit-identical to the SPD-KFAC preset, so every speedup "
        "is against the paper's own schedule; wire bytes count each "
        "scheme's actual collectives (packed inverse broadcasts vs "
        "per-layer preconditioned-gradient broadcasts)."
    )
    result.notes.append(
        "The simulator prices time and traffic only: convergence effects of "
        "COMM_OPT's stale preconditioning are out of scope (see KAISA "
        "[arXiv:2107.01739] for the accuracy side of this trade)."
    )
    return result
