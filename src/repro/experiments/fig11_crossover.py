"""Fig. 11 — inverse-computation vs broadcast-communication crossover.

Evaluates the paper's two fitted models (Eq. 26 and Eq. 27, RTX2080Ti /
64-GPU constants) across the dimension range and locates the crossover:
below it a tensor is cheaper to recompute everywhere (NCT), above it
cheaper to compute once and broadcast (CT) — the decision rule of
Algorithm 1.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, resolve_profile
from repro.perf import ClusterPerfProfile
from repro.perf.models import CommModelLike, CompModelLike


def find_crossover(
    comp: CompModelLike, comm: CommModelLike, low: int = 64, high: int = 8192
) -> Optional[int]:
    """Smallest d in [low, high] where computing costs >= broadcasting.

    Returns None when compute stays cheaper over the whole range.
    """
    if not 1 <= low <= high:
        raise ValueError("need 1 <= low <= high")
    for d in range(low, high + 1):
        if comp.time(d) >= comm.time_symmetric(d):
            return d
    return None


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Tabulate both models over the paper's dimension grid."""
    profile = resolve_profile(profile)
    comp, comm = profile.inverse_estimator, profile.broadcast
    result = ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: inverse-compute vs broadcast models (paper fits)",
        columns=("d", "inverse(s)", "broadcast(s)", "cheaper"),
    )
    for d in (64, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192):
        t_comp, t_comm = comp.time(d), comm.time_symmetric(d)
        result.rows.append(
            {
                "d": d,
                "inverse(s)": t_comp,
                "broadcast(s)": t_comm,
                "cheaper": "compute (NCT)" if t_comp < t_comm else "broadcast (CT)",
            }
        )
    crossover = find_crossover(comp, comm)
    result.notes.append(
        f"Crossover at d ~= {crossover}: tensors below it should be NCT "
        "(Fig. 11 shows the same mid-range crossover)."
    )
    return result
