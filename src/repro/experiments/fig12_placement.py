"""Fig. 12 — comparison of inverse placement strategies.

Simulates the isolated inverse stage (all factors available at t=0)
under Non-Dist, Seq-Dist, Balanced (Fig. 5b) and LBP (Algorithm 1),
reporting InverseComp + non-overlapped InverseComm on the critical rank.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedule import build_inverse_graph, resolve_placement, run_iteration
from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    resolve_profile,
)
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile

STRATEGIES = ("non_dist", "seq_dist", "balanced", "lbp")


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Inverse-stage time per placement strategy per model."""
    profile = resolve_profile(profile)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Fig. 12: inverting Kronecker factors (seconds)",
        columns=("model", "strategy", "InverseComp", "InverseComm", "total", "CTs"),
    )
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        for strategy in STRATEGIES:
            placement = resolve_placement(strategy, spec, profile, profile.num_workers)
            graph = build_inverse_graph(spec, profile, placement)
            res = run_iteration(graph, strategy, name)
            cats = res.categories()
            result.rows.append(
                {
                    "model": name,
                    "strategy": strategy,
                    "InverseComp": cats["InverseComp"],
                    "InverseComm": cats["InverseComm"],
                    "total": res.iteration_time,
                    "CTs": placement.num_cts(),
                }
            )
    result.notes.append(
        "Shape targets: LBP best on every model (paper: 10-62% improvement); "
        "Seq-Dist worse than Non-Dist on DenseNet-201.  'balanced' is the "
        "paper's Fig. 5b strawman (balance without the CT/NCT decision)."
    )
    return result
