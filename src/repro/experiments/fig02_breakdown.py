"""Fig. 2 — iteration-time breakdowns of the five training schemes.

ResNet-50, per-GPU batch 32, 64 GPUs (distributed schemes).  The paper's
headline observations this experiment must reproduce:

* KFAC is several times slower than SGD (factor construction + inverses);
* D-KFAC's factor aggregation costs much more than gradient aggregation;
* MPD-KFAC cuts InverseComp drastically (~292 ms -> ~51 ms) but pays a
  large InverseComm (~134 ms).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, resolve_profile
from repro.perf import ClusterPerfProfile
from repro.plan import Session
from repro.sim.timeline import PAPER_CATEGORIES

SCHEMES = ("SGD", "S-SGD", "KFAC", "D-KFAC", "MPD-KFAC")


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Simulate the five schemes on ResNet-50 and report stacked breakdowns."""
    session = Session("ResNet-50", resolve_profile(profile))
    result = ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2: ResNet-50 iteration breakdowns (seconds)",
        columns=("scheme", "total", *PAPER_CATEGORIES),
    )
    for name in SCHEMES:
        res = session.simulate(name)
        row = {"scheme": name, "total": res.iteration_time}
        row.update(res.categories())
        result.rows.append(row)
    result.notes.append(
        "Paper reference points: KFAC ~4x SGD; D-KFAC InverseComp ~0.292 s; "
        "MPD-KFAC InverseComp ~0.051 s and InverseComm ~0.134 s."
    )
    return result
