"""Extension: collective-algorithm crossover table (Fig. 11 style).

Fig. 11 tabulates two cost models against each other (inverse vs
broadcast) and locates the size where the cheaper one flips; this
extension does the same for *collective algorithms*: flat ring vs double
binary tree vs hierarchical all-reduce, priced on a topology by
:mod:`repro.topo.collectives` with the paper-calibrated launch
overheads.  Expected shape: the tree wins below a topology-dependent
message size (fewer latency hops), the ring wins on large flat-fabric
messages (best bus bandwidth), and on a multi-rack fabric the
hierarchical algorithm dominates everything bandwidth-bound.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.perf import ClusterPerfProfile, LAUNCH_CONSTANTS
from repro.topo import ClusterTopology, allreduce_model, flat, multi_rack

#: Message sizes in elements, spanning tiny control tensors to the
#: largest fused gradient buffers (cf. Fig. 7's 1M-512M sweep).
DEFAULT_MESSAGE_GRID = (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 29)


def find_algorithm_crossover(
    topology: ClusterTopology,
    first: str = "tree",
    second: str = "ring",
    low: int = 1,
    high: int = 1 << 29,
    launch: Optional[float] = None,
) -> Optional[int]:
    """Smallest message size in [low, high] where ``second`` beats ``first``.

    Both models are affine in the message size, so the cost difference is
    solved in closed form; either argument order works.  Returns None
    when ``first`` stays cheaper across the whole range.
    """
    if not 1 <= low <= high:
        raise ValueError("need 1 <= low <= high")
    launch = LAUNCH_CONSTANTS["allreduce"] if launch is None else launch
    a = allreduce_model(topology, first, launch)
    b = allreduce_model(topology, second, launch)
    # second beats first where (b.alpha - a.alpha) + (b.beta - a.beta) m <= 0.
    d_alpha, d_beta = b.alpha - a.alpha, b.beta - a.beta
    if d_alpha + d_beta * low <= 0:
        return low
    if d_beta >= 0:  # difference never decreases: first stays cheaper
        return None
    crossover = math.ceil(-d_alpha / d_beta)
    return crossover if crossover <= high else None


def default_topologies() -> Sequence[ClusterTopology]:
    return (
        flat(64, name="flat-64 (paper fabric)"),
        multi_rack(4, 4, 4, intra="nvlink", inter="ib", spine="ethernet",
                   name="4 racks x 4 x 4 / eth spine"),
    )


def run(
    profile: Optional[ClusterPerfProfile] = None,
    topologies: Optional[Sequence[ClusterTopology]] = None,
    message_grid: Sequence[int] = DEFAULT_MESSAGE_GRID,
) -> ExperimentResult:
    """Tabulate the three all-reduce algorithms over the message grid."""
    del profile  # costs come from the topologies themselves
    topologies = tuple(topologies) if topologies is not None else tuple(default_topologies())
    launch = LAUNCH_CONSTANTS["allreduce"]
    result = ExperimentResult(
        experiment_id="ext_topo_crossover",
        title="Extension: all-reduce algorithm crossover by topology (Fig. 11 style)",
        columns=("topology", "m(elem)", "ring(s)", "tree(s)", "hierarchical(s)", "cheapest"),
    )
    for topo in topologies:
        models = {
            name: allreduce_model(topo, name, launch)
            for name in ("ring", "tree", "hierarchical")
        }
        for m in message_grid:
            t = {name: model.time(m) for name, model in models.items()}
            result.rows.append(
                {
                    "topology": topo.name,
                    "m(elem)": m,
                    "ring(s)": t["ring"],
                    "tree(s)": t["tree"],
                    "hierarchical(s)": t["hierarchical"],
                    "cheapest": min(t, key=t.get),
                }
            )
        crossover = find_algorithm_crossover(topo, "tree", "ring")
        if crossover is None:
            result.notes.append(f"{topo.name}: the tree stays cheaper than the ring everywhere.")
        elif crossover == 1:
            result.notes.append(f"{topo.name}: the ring is cheaper than the tree everywhere.")
        else:
            result.notes.append(
                f"{topo.name}: tree-to-ring crossover at m ~= {crossover} elements "
                "(latency-bound below, bandwidth-bound above)."
            )
    return result
