"""Extension: autotune the full planner axis grid per (model, cluster).

The paper hand-picks SPD-KFAC's scheme for one flat 64-GPU InfiniBand
testbed.  This sweep runs :func:`repro.autotune.autotune` — the full
gradient-reduction x factor-fusion/launch x inverse-placement x
collective-algorithm grid — for every paper model on the flat testbed,
a 4-rack ethernet-spine cluster, and a heterogeneous NVLink+PCIe
cluster, and reports the best found combination next to the best named
preset.  Expected shape: on the paper's own fabric SPD-KFAC is (almost
always) the optimum the search re-discovers; off the paper's testbed the
search finds strictly better non-preset combinations — e.g. a different
collective algorithm than "auto" picks, or bulk gradient reduction when
a model's layer structure makes WFBP's interleaving a loss.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.autotune import autotune
from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.perf import ClusterPerfProfile
from repro.topo import ClusterTopology, named_topology

#: The swept 64-GPU cluster shapes (differences are purely topological).
SCENARIO_NAMES = ("flat", "multi-rack", "heterogeneous")

_CACHED_DEFAULT_RUN: Optional[ExperimentResult] = None


def default_scenarios() -> Tuple[ClusterTopology, ...]:
    return tuple(named_topology(name) for name in SCENARIO_NAMES)


def _fresh_copy(result: ExperimentResult) -> ExperimentResult:
    """A caller-mutable copy of a cached result (rows/notes copied)."""
    return ExperimentResult(
        experiment_id=result.experiment_id,
        title=result.title,
        columns=tuple(result.columns),
        rows=[dict(row) for row in result.rows],
        notes=list(result.notes),
    )


def run(
    profile: Optional[ClusterPerfProfile] = None,
    scenarios: Optional[Sequence[ClusterTopology]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Autotune every (model, topology) cell; compare with the presets.

    The 12-cell default sweep simulates thousands of candidate schedules,
    so its result is computed once per process and copied per caller.
    """
    global _CACHED_DEFAULT_RUN
    del profile  # each cell derives its profiles from the topology
    default_run = scenarios is None and models is None
    if default_run and _CACHED_DEFAULT_RUN is not None:
        return _fresh_copy(_CACHED_DEFAULT_RUN)
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    models = tuple(models) if models is not None else PAPER_MODEL_NAMES

    result = ExperimentResult(
        experiment_id="ext_autotune",
        title="Extension: best strategy per (model, topology) from a full axis-grid search",
        columns=(
            "model", "topology", "cands", "sim", "pruned", "best strategy",
            "best(s)", "best preset", "preset(s)", "speedup", "pareto",
        ),
    )
    beaten = []
    for topo in scenarios:
        for model in models:
            report = autotune(model, topo)
            best = report.best
            preset_name, preset_time = report.best_preset
            result.rows.append(
                {
                    "model": model,
                    "topology": topo.name,
                    "cands": report.stats["candidates"],
                    "sim": report.stats["simulated"],
                    "pruned": report.stats["pruned"],
                    "best strategy": best.label,
                    "best(s)": best.iteration_time,
                    "best preset": preset_name,
                    "preset(s)": preset_time,
                    "speedup": report.speedup_over_presets,
                    "pareto": len(report.pareto()),
                }
            )
            if best.iteration_time < preset_time and best.preset is None:
                beaten.append((model, topo.name, best, preset_name, preset_time))

    for model, topo_name, best, preset_name, preset_time in beaten:
        result.notes.append(
            f"{model} on {topo_name}: the non-preset combination "
            f"{best.label} beats {preset_name} "
            f"({best.iteration_time:.4f}s vs {preset_time:.4f}s) — "
            "the hand-picked SPD-KFAC axes are not optimal for this cell."
        )
    result.notes.append(
        "Every cell's best is at least as fast as the best named preset by "
        "construction: the presets are simulated first and their axis "
        "twins stay in the ranking."
    )
    result.notes.append(
        "speedup = best preset time / best found time; pareto = size of "
        "the (iteration time x traffic bytes) frontier among simulated "
        "candidates."
    )
    if default_run:
        _CACHED_DEFAULT_RUN = result
        return _fresh_copy(result)
    return result
