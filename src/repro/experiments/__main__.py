"""CLI: ``python -m repro.experiments [ids...|all|report]``,
``python -m repro.experiments plan <model> <strategy>``,
``python -m repro.experiments autotune <model>``,
``python -m repro.experiments trace <model> <strategy>``, and
``python -m repro.experiments serve``.

Examples::

    python -m repro.experiments tab3 fig12
    python -m repro.experiments all
    python -m repro.experiments report   # regenerate EXPERIMENTS.md body
    python -m repro.experiments tab3 --run-report reports/
    python -m repro.experiments plan ResNet-50 SPD-KFAC
    python -m repro.experiments plan ResNet-152 MPD-KFAC --gpus 16 --json plan.json
    python -m repro.experiments plan --list-strategies
    python -m repro.experiments autotune ResNet-50 --gpus 16
    python -m repro.experiments autotune DenseNet-201 --topology heterogeneous --json report.json
    python -m repro.experiments autotune ResNet-50 --scenario stragglers --samples 8
    python -m repro.experiments autotune ResNet-50 --stats --cache-stats
    python -m repro.experiments autotune --list-topologies
    python -m repro.experiments trace ResNet-50 SPD-KFAC --gpus 64 --out trace.json
    python -m repro.experiments trace ResNet-50 SPD-KFAC --critical-only
    python -m repro.experiments serve --port 8061 --store /tmp/plan-store
    python -m repro.experiments serve --load-test 1000 --concurrency 8 --json report.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import EXPERIMENTS, get_experiment
from repro.experiments.report import render_report


def _print_cache_stats() -> None:
    from repro.plan.session import cache_info

    info = cache_info()
    print(
        f"plan cache: {info['hits']} hits, {info['misses']} misses, "
        f"{info['entries']}/{info['maxsize']} entries"
    )


def _plan_main(argv) -> int:
    from repro.models.catalog import PAPER_MODELS
    from repro.plan import COLLECTIVE_ALGORITHMS, Session, strategy_registry

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments plan",
        description="Resolve and print a training plan for one model x strategy.",
    )
    parser.add_argument(
        "model", nargs="?", help=f"model name ({', '.join(PAPER_MODELS)})"
    )
    parser.add_argument(
        "strategy",
        nargs="?",
        help=f"strategy name ({', '.join(strategy_registry.names())})",
    )
    parser.add_argument(
        "--gpus", type=int, default=None,
        help="cluster size (default: the paper's 64-GPU testbed)",
    )
    parser.add_argument(
        "--collective", choices=COLLECTIVE_ALGORITHMS, default=None,
        help=(
            "collective algorithm: models the cluster as a flat topology of "
            "--gpus GPUs on the paper's fabric and derives the cost profile "
            "with this algorithm (default: the paper's calibrated profile)"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also serialize the plan (losslessly) to PATH",
    )
    parser.add_argument(
        "--list-strategies", action="store_true",
        help="list registered strategies and exit",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print shared plan-cache hit/miss counters after planning",
    )
    args = parser.parse_args(argv)

    if args.list_strategies:
        width = max(len(name) for name in strategy_registry.names())
        for name, strategy in strategy_registry.items():
            # describe() starts with "<name>: "; strip it so the padded
            # name column and the one-line description stay aligned.
            description = strategy.describe().split(": ", 1)[1]
            print(f"{name:<{width}}  {description}")
        return 0
    if args.model is None or args.strategy is None:
        parser.error("model and strategy are required (or use --list-strategies)")

    try:
        strategy = strategy_registry[args.strategy]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    # A profile-backed session ignores the collective axis (the profile
    # already encodes its collectives), so --collective switches to a
    # topology-backed session over a flat cluster of the same size.
    if args.collective is not None:
        from repro.topo import flat

        strategy = strategy.but(collective=args.collective)
        cluster = flat(args.gpus if args.gpus is not None else 64)
    else:
        cluster = args.gpus

    try:
        session = Session(args.model, cluster)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    plan = session.plan(strategy)
    print(plan.summary())
    if args.json:
        plan.save(args.json)
        print(f"plan written to {args.json}")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def _autotune_main(argv) -> int:
    from repro.autotune import ROBUST_OBJECTIVES, autotune
    from repro.faults import scenario_preset_names
    from repro.models.catalog import PAPER_MODELS
    from repro.topo import describe_topology_preset, named_topology, topology_preset_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments autotune",
        description=(
            "Search the full planner axis grid (gradient reduction x factor "
            "fusion/launch x inverse placement x collective algorithm) for "
            "one model on one cluster."
        ),
    )
    parser.add_argument(
        "model", nargs="?", help=f"model name ({', '.join(PAPER_MODELS)})"
    )
    cluster = parser.add_mutually_exclusive_group()
    cluster.add_argument(
        "--gpus", type=int, default=None,
        help="cluster size (default: the paper's 64-GPU testbed)",
    )
    cluster.add_argument(
        "--topology", default=None, metavar="NAME",
        help=(
            "named cluster topology preset "
            f"({', '.join(topology_preset_names())}); searches the "
            "collective-algorithm axis too"
        ),
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="ranked candidates to print (default: 10)",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="simulate every candidate instead of pruning by lower bound",
    )
    parser.add_argument(
        "--search", choices=("grid", "bnb"), default="grid",
        help=(
            "enumeration engine: 'grid' prices every candidate's bound up "
            "front; 'bnb' runs best-first branch-and-bound with batched "
            "leaf pricing (same winner, cheaper on extended grids)"
        ),
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help=(
            "fault scenario preset "
            f"({', '.join(scenario_preset_names())}); switches the search "
            "to a robust objective over seeded scenario samples"
        ),
    )
    parser.add_argument(
        "--objective", default=None, metavar="OBJ",
        help=(
            "robust ranking objective with --scenario "
            f"({', '.join(ROBUST_OBJECTIVES[1:])}; default: p95)"
        ),
    )
    parser.add_argument(
        "--samples", type=int, default=32, metavar="N",
        help="seeded scenario samples per candidate (default: 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full ranked report (with Pareto frontier) to PATH",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help=(
            "print search telemetry: wall-clock per stage, prune rate, "
            "bound-tightness histogram, plan-cache traffic"
        ),
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print shared plan-cache hit/miss counters after the search",
    )
    parser.add_argument(
        "--list-topologies", action="store_true",
        help="list named topology presets and exit",
    )
    args = parser.parse_args(argv)

    if args.list_topologies:
        width = max(len(name) for name in topology_preset_names())
        for name in topology_preset_names():
            topo = named_topology(name)
            print(
                f"{name:<{width}}  {describe_topology_preset(name)} "
                f"({topo.world_size} GPUs)"
            )
        return 0
    if args.model is None:
        parser.error("model is required (or use --list-topologies)")

    if args.topology is not None:
        try:
            cluster_arg = named_topology(args.topology)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        cluster_arg = args.gpus

    try:
        report = autotune(
            args.model,
            cluster_arg,
            prune=not args.no_prune,
            search=args.search,
            scenario=args.scenario,
            objective=args.objective,
            samples=args.samples,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report.to_text(top_k=args.top))
    if args.stats:
        print(report.telemetry_text())
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def _trace_main(argv) -> int:
    from repro.models.catalog import PAPER_MODELS
    from repro.plan import Session, strategy_registry
    from repro.plan.session import build_strategy_graph
    from repro.sim import critical_path_report, perfetto_trace, save_trace, simulate
    from repro.topo import named_topology, topology_preset_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace",
        description=(
            "Simulate one iteration of a model x strategy and export the "
            "schedule as a Perfetto/chrome-tracing JSON trace (per-rank "
            "compute/comm tracks, dependency flow arrows, counter tracks, "
            "and the critical path as its own track), plus a slack/blame "
            "critical-path summary on stdout."
        ),
    )
    parser.add_argument(
        "model", help=f"model name ({', '.join(PAPER_MODELS)})"
    )
    parser.add_argument(
        "strategy",
        help=f"strategy name ({', '.join(strategy_registry.names())})",
    )
    cluster = parser.add_mutually_exclusive_group()
    cluster.add_argument(
        "--gpus", type=int, default=None,
        help="cluster size (default: the paper's 64-GPU testbed)",
    )
    cluster.add_argument(
        "--topology", default=None, metavar="NAME",
        help=f"named cluster topology preset ({', '.join(topology_preset_names())})",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the trace JSON here (open in ui.perfetto.dev or chrome://tracing)",
    )
    parser.add_argument(
        "--no-flows", action="store_true",
        help="omit dependency flow arrows (smaller file)",
    )
    parser.add_argument(
        "--no-counters", action="store_true",
        help="omit the per-rank counter tracks",
    )
    parser.add_argument(
        "--critical-only", action="store_true",
        help="print the critical-path blame summary without writing a trace",
    )
    args = parser.parse_args(argv)

    if args.out is None and not args.critical_only:
        parser.error("--out PATH is required (or use --critical-only)")

    if args.topology is not None:
        try:
            cluster_arg = named_topology(args.topology)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        cluster_arg = args.gpus

    try:
        session = Session(args.model, cluster_arg)
        strategy = strategy_registry[args.strategy]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    graph = build_strategy_graph(
        session.spec, session.profile_for(strategy), strategy
    )
    timeline = simulate(graph)
    report = critical_path_report(graph, timeline)
    print(
        f"{session.model} x {strategy.name} on {session.num_workers} GPUs: "
        f"{len(graph)} tasks, makespan {timeline.makespan:.4f}s"
    )
    print(report.to_text())
    if args.out is not None:
        trace = perfetto_trace(
            timeline,
            graph,
            flows=not args.no_flows,
            counters=not args.no_counters,
            report=report,
        )
        save_trace(args.out, trace)
        print(
            f"trace written to {args.out} "
            f"({len(trace['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    return 0


def _serve_main(argv) -> int:
    from repro.serve import PlanServer, run_load_test

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Run the plan server (plan/simulate/autotune over JSON HTTP), "
            "or load-test a fresh instance with --load-test."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind host")
    parser.add_argument(
        "--port", type=int, default=8061, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="disk-backed plan store directory (created if missing)",
    )
    parser.add_argument(
        "--store-max-mb",
        type=float,
        metavar="MB",
        default=None,
        help=(
            "cap the store's on-disk size (megabytes); oldest entries are "
            "evicted at boot and periodically while serving"
        ),
    )
    parser.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="disable the POST /shutdown endpoint",
    )
    parser.add_argument(
        "--load-test",
        type=int,
        metavar="N",
        default=None,
        help="instead of serving, boot an ephemeral server and fire N mixed queries",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, help="load-test client threads"
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="load-test client processes"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="load-test workload seed"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the load-test report as JSON",
    )
    args = parser.parse_args(argv)

    if args.store_max_mb is not None:
        if args.store is None:
            parser.error("--store-max-mb requires --store")
        if args.store_max_mb < 0:
            parser.error("--store-max-mb must be >= 0")
    store_max_bytes = (
        None if args.store_max_mb is None else int(args.store_max_mb * 1024 * 1024)
    )

    if args.load_test is not None:
        with PlanServer(
            args.host, 0, store=args.store, store_max_bytes=store_max_bytes
        ) as server:
            report = run_load_test(
                server.host,
                server.port,
                queries=args.load_test,
                concurrency=args.concurrency,
                processes=args.processes,
                seed=args.seed,
            )
        print(report.to_text())
        if args.json is not None:
            import json as json_mod

            with open(args.json, "w") as fh:
                json_mod.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"load-test report written to {args.json}")
        return 1 if report.errors else 0

    server = PlanServer(
        args.host,
        args.port,
        store=args.store,
        store_max_bytes=store_max_bytes,
        allow_remote_shutdown=not args.no_remote_shutdown,
    )
    store_note = f", store={args.store}" if args.store else ""
    print(f"serving on http://{server.address}{store_note}  (Ctrl-C to stop)")
    server.serve_forever()
    print("server stopped")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "plan":
        return _plan_main(argv[1:])
    if argv and argv[0] == "autotune":
        return _autotune_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(EXPERIMENTS)}), 'all', 'report', "
            "'plan <model> <strategy>' (see 'plan --help'), "
            "'autotune <model>' (see 'autotune --help'), "
            "'trace <model> <strategy>' (see 'trace --help'), or "
            "'serve' (see 'serve --help')"
        ),
    )
    parser.add_argument(
        "--run-report", metavar="DIR", default=None,
        help=(
            "also write one <id>.report.json per experiment into DIR "
            "(wall-clock, plan-cache hit rate, span summary)"
        ),
    )
    args = parser.parse_args(argv)

    if args.ids == ["report"]:
        print(render_report())
        return 0

    ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
    if args.run_report is not None:
        import os

        from repro.experiments.base import run_with_report, save_run_report

        os.makedirs(args.run_report, exist_ok=True)
        for experiment_id in ids:
            result, run_report = run_with_report(experiment_id)
            print(result.to_text())
            path = os.path.join(args.run_report, f"{experiment_id}.report.json")
            save_run_report(path, run_report)
            print(f"run report written to {path}")
            print()
        return 0
    for experiment_id in ids:
        module = get_experiment(experiment_id)
        print(module.run().to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
