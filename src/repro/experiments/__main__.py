"""CLI: ``python -m repro.experiments [ids...|all|report]``.

Examples::

    python -m repro.experiments tab3 fig12
    python -m repro.experiments all
    python -m repro.experiments report   # regenerate EXPERIMENTS.md body
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import EXPERIMENTS, get_experiment
from repro.experiments.report import render_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}), 'all', or 'report'",
    )
    args = parser.parse_args(argv)

    if args.ids == ["report"]:
        print(render_report())
        return 0

    ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
    for experiment_id in ids:
        module = get_experiment(experiment_id)
        print(module.run().to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
