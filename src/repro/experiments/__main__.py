"""CLI: ``python -m repro.experiments [ids...|all|report]``,
``python -m repro.experiments plan <model> <strategy>``, and
``python -m repro.experiments autotune <model>``.

Examples::

    python -m repro.experiments tab3 fig12
    python -m repro.experiments all
    python -m repro.experiments report   # regenerate EXPERIMENTS.md body
    python -m repro.experiments plan ResNet-50 SPD-KFAC
    python -m repro.experiments plan ResNet-152 MPD-KFAC --gpus 16 --json plan.json
    python -m repro.experiments plan --list-strategies
    python -m repro.experiments autotune ResNet-50 --gpus 16
    python -m repro.experiments autotune DenseNet-201 --topology heterogeneous --json report.json
    python -m repro.experiments autotune ResNet-50 --scenario stragglers --samples 8
    python -m repro.experiments autotune --list-topologies
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.base import EXPERIMENTS, get_experiment
from repro.experiments.report import render_report


def _plan_main(argv) -> int:
    from repro.models.catalog import PAPER_MODELS
    from repro.plan import COLLECTIVE_ALGORITHMS, Session, strategy_registry

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments plan",
        description="Resolve and print a training plan for one model x strategy.",
    )
    parser.add_argument(
        "model", nargs="?", help=f"model name ({', '.join(PAPER_MODELS)})"
    )
    parser.add_argument(
        "strategy",
        nargs="?",
        help=f"strategy name ({', '.join(strategy_registry.names())})",
    )
    parser.add_argument(
        "--gpus", type=int, default=None,
        help="cluster size (default: the paper's 64-GPU testbed)",
    )
    parser.add_argument(
        "--collective", choices=COLLECTIVE_ALGORITHMS, default=None,
        help=(
            "collective algorithm: models the cluster as a flat topology of "
            "--gpus GPUs on the paper's fabric and derives the cost profile "
            "with this algorithm (default: the paper's calibrated profile)"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also serialize the plan (losslessly) to PATH",
    )
    parser.add_argument(
        "--list-strategies", action="store_true",
        help="list registered strategies and exit",
    )
    args = parser.parse_args(argv)

    if args.list_strategies:
        width = max(len(name) for name in strategy_registry.names())
        for name, strategy in strategy_registry.items():
            # describe() starts with "<name>: "; strip it so the padded
            # name column and the one-line description stay aligned.
            description = strategy.describe().split(": ", 1)[1]
            print(f"{name:<{width}}  {description}")
        return 0
    if args.model is None or args.strategy is None:
        parser.error("model and strategy are required (or use --list-strategies)")

    try:
        strategy = strategy_registry[args.strategy]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    # A profile-backed session ignores the collective axis (the profile
    # already encodes its collectives), so --collective switches to a
    # topology-backed session over a flat cluster of the same size.
    if args.collective is not None:
        from repro.topo import flat

        strategy = strategy.but(collective=args.collective)
        cluster = flat(args.gpus if args.gpus is not None else 64)
    else:
        cluster = args.gpus

    try:
        session = Session(args.model, cluster)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    plan = session.plan(strategy)
    print(plan.summary())
    if args.json:
        plan.save(args.json)
        print(f"plan written to {args.json}")
    return 0


def _autotune_main(argv) -> int:
    from repro.autotune import ROBUST_OBJECTIVES, autotune
    from repro.faults import scenario_preset_names
    from repro.models.catalog import PAPER_MODELS
    from repro.topo import describe_topology_preset, named_topology, topology_preset_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments autotune",
        description=(
            "Search the full planner axis grid (gradient reduction x factor "
            "fusion/launch x inverse placement x collective algorithm) for "
            "one model on one cluster."
        ),
    )
    parser.add_argument(
        "model", nargs="?", help=f"model name ({', '.join(PAPER_MODELS)})"
    )
    cluster = parser.add_mutually_exclusive_group()
    cluster.add_argument(
        "--gpus", type=int, default=None,
        help="cluster size (default: the paper's 64-GPU testbed)",
    )
    cluster.add_argument(
        "--topology", default=None, metavar="NAME",
        help=(
            "named cluster topology preset "
            f"({', '.join(topology_preset_names())}); searches the "
            "collective-algorithm axis too"
        ),
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="ranked candidates to print (default: 10)",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="simulate every candidate instead of pruning by lower bound",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help=(
            "fault scenario preset "
            f"({', '.join(scenario_preset_names())}); switches the search "
            "to a robust objective over seeded scenario samples"
        ),
    )
    parser.add_argument(
        "--objective", default=None, metavar="OBJ",
        help=(
            "robust ranking objective with --scenario "
            f"({', '.join(ROBUST_OBJECTIVES[1:])}; default: p95)"
        ),
    )
    parser.add_argument(
        "--samples", type=int, default=32, metavar="N",
        help="seeded scenario samples per candidate (default: 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full ranked report (with Pareto frontier) to PATH",
    )
    parser.add_argument(
        "--list-topologies", action="store_true",
        help="list named topology presets and exit",
    )
    args = parser.parse_args(argv)

    if args.list_topologies:
        width = max(len(name) for name in topology_preset_names())
        for name in topology_preset_names():
            topo = named_topology(name)
            print(
                f"{name:<{width}}  {describe_topology_preset(name)} "
                f"({topo.world_size} GPUs)"
            )
        return 0
    if args.model is None:
        parser.error("model is required (or use --list-topologies)")

    if args.topology is not None:
        try:
            cluster_arg = named_topology(args.topology)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        cluster_arg = args.gpus

    try:
        report = autotune(
            args.model,
            cluster_arg,
            prune=not args.no_prune,
            scenario=args.scenario,
            objective=args.objective,
            samples=args.samples,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report.to_text(top_k=args.top))
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "plan":
        return _plan_main(argv[1:])
    if argv and argv[0] == "autotune":
        return _autotune_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="+",
        help=(
            f"experiment ids ({', '.join(EXPERIMENTS)}), 'all', 'report', "
            "'plan <model> <strategy>' (see 'plan --help'), or "
            "'autotune <model>' (see 'autotune --help')"
        ),
    )
    args = parser.parse_args(argv)

    if args.ids == ["report"]:
        print(render_report())
        return 0

    ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
    for experiment_id in ids:
        module = get_experiment(experiment_id)
        print(module.run().to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
