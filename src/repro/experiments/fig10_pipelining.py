"""Fig. 10 — pipelining of factor computation and communication.

Compares Naive (bulk-per-pass, after [20]), LW w/o TF, LW w/ TTF
(Horovod threshold) and SP w/ OTF (the paper) on FactorComp plus
*non-overlapped* FactorComm, per Section VI-D.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import FactorCommStrategy
from repro.core.schedule import build_factor_pipeline_graph, run_iteration
from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    resolve_profile,
)
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile

STRATEGY_LABELS = (
    (FactorCommStrategy.NAIVE, "Naive"),
    (FactorCommStrategy.LW_NO_TF, "LW w/o TF"),
    (FactorCommStrategy.LW_TTF, "LW w/ TTF"),
    (FactorCommStrategy.SP_OTF, "SP w/ OTF"),
)


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """FactorComp + non-overlapped FactorComm for each strategy x model."""
    profile = resolve_profile(profile)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: factor comp/comm pipelining (seconds)",
        columns=("model", "strategy", "FactorComp", "FactorComm", "total"),
    )
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        for strategy, label in STRATEGY_LABELS:
            graph = build_factor_pipeline_graph(spec, profile, strategy)
            cats = run_iteration(graph, label, name).categories()
            result.rows.append(
                {
                    "model": name,
                    "strategy": label,
                    "FactorComp": cats["FactorComp"],
                    "FactorComm": cats["FactorComm"],
                    "total": cats["FactorComp"] + cats["FactorComm"],
                }
            )
    result.notes.append(
        "Shape targets: LW w/o TF worse than Naive (startup-dominated); "
        "LW w/ TTF better than Naive; SP w/ OTF best (paper: hides 50-84% "
        "of factor communication)."
    )
    return result
