"""Fig. 10 — pipelining of factor computation and communication.

Compares Naive (bulk-per-pass, after [20]), LW w/o TF, LW w/ TTF
(Horovod threshold) and SP w/ OTF (the paper) on FactorComp plus
*non-overlapped* FactorComm, per Section VI-D.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    resolve_profile,
)
from repro.perf import ClusterPerfProfile
from repro.plan import Session, strategy_registry

#: (factor_fusion, factor_pipelining) per compared strategy; the solve
#: stage is dropped (include_solve=False) to isolate the factor pipeline.
STRATEGY_AXES = (
    ("Naive", "bulk", False),
    ("LW w/o TF", "none", True),
    ("LW w/ TTF", "threshold", True),
    ("SP w/ OTF", "optimal", True),
)


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """FactorComp + non-overlapped FactorComm for each strategy x model."""
    profile = resolve_profile(profile)
    base = strategy_registry["SPD-KFAC"]
    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10: factor comp/comm pipelining (seconds)",
        columns=("model", "strategy", "FactorComp", "FactorComm", "total"),
    )
    for name in PAPER_MODEL_NAMES:
        session = Session(name, profile)
        for label, fusion, pipelined in STRATEGY_AXES:
            strategy = base.but(
                name=label,
                factor_fusion=fusion,
                factor_pipelining=pipelined,
                include_solve=False,
            )
            cats = session.simulate(strategy).categories()
            result.rows.append(
                {
                    "model": name,
                    "strategy": label,
                    "FactorComp": cats["FactorComp"],
                    "FactorComm": cats["FactorComm"],
                    "total": cats["FactorComp"] + cats["FactorComm"],
                }
            )
    result.notes.append(
        "Shape targets: LW w/o TF worse than Naive (startup-dominated); "
        "LW w/ TTF better than Naive; SP w/ OTF best (paper: hides 50-84% "
        "of factor communication)."
    )
    return result
