"""Table III — average iteration wall-clock time and speedups.

SP1 = D-KFAC / SPD-KFAC, SP2 = MPD-KFAC / SPD-KFAC, per the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    variant_results,
)
from repro.perf import ClusterPerfProfile

#: The paper's Table III (seconds): model -> (D-KFAC, MPD-KFAC, SPD-KFAC).
PAPER_TABLE3 = {
    "ResNet-50": (0.8525, 0.7635, 0.6755),
    "ResNet-152": (1.5807, 1.3933, 1.1689),
    "DenseNet-201": (1.4964, 1.5340, 1.3615),
    "Inception-v4": (1.1857, 1.1473, 0.9907),
}


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Simulate one iteration of each variant on each model."""
    result = ExperimentResult(
        experiment_id="tab3",
        title="Table III: iteration time (s) and speedups",
        columns=(
            "model", "D-KFAC", "MPD-KFAC", "SPD-KFAC", "SP1", "SP2",
            "paper_SP1", "paper_SP2",
        ),
    )
    for name in PAPER_MODEL_NAMES:
        res = variant_results(name, profile)
        d = res["D-KFAC"].iteration_time
        m = res["MPD-KFAC"].iteration_time
        s = res["SPD-KFAC"].iteration_time
        paper_d, paper_m, paper_s = PAPER_TABLE3[name]
        result.rows.append(
            {
                "model": name,
                "D-KFAC": d,
                "MPD-KFAC": m,
                "SPD-KFAC": s,
                "SP1": d / s,
                "SP2": m / s,
                "paper_SP1": paper_d / paper_s,
                "paper_SP2": paper_m / paper_s,
            }
        )
    result.notes.append(
        "Shape targets: SPD-KFAC fastest on every model; MPD-KFAC slower "
        "than D-KFAC on DenseNet-201 (the paper's broadcast-overhead case)."
    )
    return result
