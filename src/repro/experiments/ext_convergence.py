"""Extension: iterations-to-accuracy, K-FAC vs SGD (numerical, real).

The paper's motivation (Section I, citing Osawa et al. [13]) is that
second-order training reaches target accuracy in ~1/3 the iterations of
SGD.  This experiment reproduces that *shape* at laptop scale: the same
model and data stream trained with K-FAC and with SGD, measuring the
iterations needed to reach a target held-out accuracy.

Unlike the fig*/tab* experiments this one runs the actual numerical
stack (repro.nn + repro.core.kfac) rather than the simulator.
"""

from __future__ import annotations

from typing import Optional

from repro.core import KFACOptimizer, Trainer
from repro.experiments.base import ExperimentResult
from repro.models import make_mlp
from repro.nn import SGD
from repro.perf import ClusterPerfProfile
from repro.workloads import gaussian_blobs, sharded_batches

TARGET_ACCURACY = 0.99
MAX_ITERATIONS = 150
EVAL_EVERY = 2


def _iterations_to_target(optimizer_name: str) -> dict:
    import numpy as np

    data = gaussian_blobs(512, 10, 3, scale_spread=8.0, rng=0)
    x_all, y_all = data
    x_all = x_all / np.abs(x_all).max() * 3.0
    data = (x_all, y_all)

    net = make_mlp(in_features=10, hidden=24, num_classes=3, rng=1)
    if optimizer_name == "K-FAC":
        optimizer = KFACOptimizer(
            net, lr=0.3, damping=1e-2, stat_decay=0.9, kl_clip=1e-2
        )
    else:
        optimizer = SGD(net.parameters(), lr=0.5, momentum=0.9)
    trainer = Trainer(net, optimizer)
    stream = sharded_batches(data, world_size=1, batch_size=64, rng=2)

    reached = None
    accuracy = 0.0
    for iteration in range(1, MAX_ITERATIONS + 1):
        (batch,) = next(stream)
        trainer.train_step(*batch)
        if iteration % EVAL_EVERY == 0:
            _, accuracy = trainer.evaluate(x_all, y_all)
            if accuracy >= TARGET_ACCURACY and reached is None:
                reached = iteration
                break
    if reached is None:
        _, accuracy = trainer.evaluate(x_all, y_all)
    return {
        "optimizer": optimizer_name,
        "iters_to_99%": reached if reached is not None else f">{MAX_ITERATIONS}",
        "final_accuracy": accuracy,
    }


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Train with both optimizers; report iterations to target accuracy."""
    del profile  # numerical experiment, no cluster involved
    result = ExperimentResult(
        experiment_id="ext_convergence",
        title="Extension: iterations to 99% accuracy, K-FAC vs SGD",
        columns=("optimizer", "iters_to_99%", "final_accuracy"),
    )
    kfac_row = _iterations_to_target("K-FAC")
    sgd_row = _iterations_to_target("SGD")
    result.rows.extend([kfac_row, sgd_row])
    result.notes.append(
        "Shape target (after [13], cited by the paper's introduction): "
        "K-FAC reaches the target accuracy in substantially fewer "
        "iterations than first-order SGD."
    )
    return result
