"""Extension: the precision / compression / staleness frontier of SPD-KFAC.

The paper communicates everything at fp32 and refreshes Kronecker
factors and inverses every iteration.  Real deployments (KAISA-style
systems, gradient-compression trainers) trade accuracy for time along
three axes our :class:`~repro.plan.TrainingStrategy` now exposes: wire
dtype per traffic class, top-k gradient compression, and stale
factor/inverse update intervals.  This sweep prices SPD-KFAC variants
along each axis — and the combined headline variant (fp16 factor
all-reduces + interval-4 inverse refreshes) — for every paper model on
the flat paper fabric and a 4-rack ethernet-spine cluster, reporting
iteration time (cycle-averaged for stale variants), speedup over paper
SPD-KFAC, and amortized wire bytes per iteration.

Expected shape: the combined variant beats paper SPD-KFAC on every
(model, topology) cell — factor communication and the inverse stage are
the two overheads the paper attacks, and these axes shrink exactly
those — with the largest wins where factor traffic dominates
(multi-rack DenseNet/ResNet-152).  Numeric-accuracy effects are out of
scope here (the simulator prices time, not convergence); the notes say
so explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.autotune import plan_traffic
from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.perf import ClusterPerfProfile
from repro.plan import Session, strategy_registry
from repro.topo import ClusterTopology, named_topology

#: The swept 64-GPU cluster shapes (differences are purely topological).
SCENARIO_NAMES = ("flat", "multi-rack")

#: (variant label, axis overrides on the SPD-KFAC preset), in report order.
#: "factors-fp16" halves the wire bytes of the whole K-FAC side channel:
#: factor all-reduces *and* inverse broadcasts both go fp16.
VARIANTS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("paper", {}),
    ("grad-fp16", {"grad_dtype": "fp16"}),
    ("grad-top10%", {"grad_compression": 0.1}),
    ("factors-fp16", {"factor_dtype": "fp16", "inverse_dtype": "fp16"}),
    ("inverses-K4", {"inverse_update_interval": 4}),
    (
        "factors-fp16+K4",
        {
            "factor_dtype": "fp16",
            "inverse_dtype": "fp16",
            "inverse_update_interval": 4,
        },
    ),
)

#: The headline combination the notes single out.
HEADLINE_VARIANT = "factors-fp16+K4"


def default_scenarios() -> Tuple[ClusterTopology, ...]:
    """The default 64-GPU topology sweep."""
    return tuple(named_topology(name) for name in SCENARIO_NAMES)


def run(
    profile: Optional[ClusterPerfProfile] = None,
    scenarios: Optional[Sequence[ClusterTopology]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Price every (model, topology, variant) cell against paper SPD-KFAC."""
    del profile  # each cell derives its profiles from the topology
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    models = tuple(models) if models is not None else PAPER_MODEL_NAMES

    result = ExperimentResult(
        experiment_id="ext_precision",
        title=(
            "Extension: precision, compression, and staleness axes vs paper SPD-KFAC"
        ),
        columns=(
            "model", "topology", "variant", "time(s)", "speedup", "wire(MB/iter)",
        ),
    )
    spd = strategy_registry["SPD-KFAC"]
    headline: Dict[Tuple[str, str], float] = {}
    for topo in scenarios:
        for model in models:
            session = Session(model, topo)
            base_time = None
            for label, axes in VARIANTS:
                strategy = spd.but(name=f"SPD-KFAC[{label}]", **axes)
                plan = session.plan(strategy)
                time = plan.predicted_makespan
                if label == "paper":
                    base_time = time
                speedup = base_time / time
                wire_mb = plan_traffic(plan).total_bytes() / 1e6
                result.rows.append(
                    {
                        "model": model,
                        "topology": topo.name,
                        "variant": label,
                        "time(s)": time,
                        "speedup": speedup,
                        "wire(MB/iter)": wire_mb,
                    }
                )
                if label == HEADLINE_VARIANT:
                    headline[(model, topo.name)] = speedup

    if headline:
        best_cell = max(headline, key=headline.get)
        worst_cell = min(headline, key=headline.get)
        result.notes.append(
            f"{HEADLINE_VARIANT} (fp16 factor all-reduces and inverse "
            "broadcasts + interval-4 inverse refreshes) "
            f"beats paper SPD-KFAC on {sum(s > 1.0 for s in headline.values())}"
            f"/{len(headline)} cells: from {headline[worst_cell]:.3f}x on "
            f"{worst_cell[0]} @ {worst_cell[1]} to {headline[best_cell]:.3f}x on "
            f"{best_cell[0]} @ {best_cell[1]}."
        )
    result.notes.append(
        "Stale variants report the exact cycle-averaged iteration time "
        "(refresh and steady-state iterations simulated separately) and "
        "amortized wire bytes; 'paper' is bit-identical to the SPD-KFAC "
        "preset, so every speedup is against the paper's own schedule."
    )
    result.notes.append(
        "The simulator prices time and traffic only: convergence effects of "
        "reduced precision, compression, or stale inverses are out of scope "
        "(see KAISA [arXiv:2107.01739] for the accuracy side of this trade)."
    )
    return result
