"""Fig. 9 — per-phase time breakdowns of D-KFAC / MPD-KFAC / SPD-KFAC."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    variant_results,
)
from repro.perf import ClusterPerfProfile
from repro.sim.timeline import PAPER_CATEGORIES


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Stacked breakdowns for the three D-KFAC variants on all four models."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9: time breakdowns of the D-KFAC variants (seconds)",
        columns=("model", "algorithm", "total", *PAPER_CATEGORIES),
    )
    for name in PAPER_MODEL_NAMES:
        for algorithm, res in variant_results(name, profile).items():
            row = {"model": name, "algorithm": algorithm, "total": res.iteration_time}
            row.update(res.categories())
            result.rows.append(row)
    result.notes.append(
        "Shape targets: FF&BP/GradComm/FactorComp identical across variants "
        "per model; SPD-KFAC hides most FactorComm; MPD-KFAC trades "
        "InverseComp for a large InverseComm."
    )
    return result
