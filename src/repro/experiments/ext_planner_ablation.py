"""Extension: ablation of the planner design choices (DESIGN.md §4).

Two internal decisions of our SPD-KFAC implementation are compared here:

* **fusion planner** — the exact DP (our SP w/ OTF) vs the single-pass
  Eq. 15 greedy, measured by predicted completion of each factor pass;
* **LBP load metric** — Eq. 25's ``d^2`` weights vs the literal
  Algorithm 1 listing's ``d`` weights, measured by simulated
  inverse-stage time.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fusion import fusion_completion_time, plan_eq15_greedy, plan_optimal_fusion
from repro.core.pipeline import factor_availability
from repro.core.placement import lbp_placement
from repro.core.schedule import build_inverse_graph, run_iteration
from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult, resolve_profile
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Planner ablations over the four paper models."""
    profile = resolve_profile(profile)
    result = ExperimentResult(
        experiment_id="ext_planner",
        title="Extension: planner ablations (fusion DP vs greedy; LBP weights)",
        columns=(
            "model",
            "A-pass DP(s)", "A-pass greedy(s)",
            "inverse LBP-d2(s)", "inverse LBP-d(s)",
        ),
    )
    comm = profile.allreduce_streamed
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        a_sizes = [layer.a_elements for layer in spec.layers]
        a_avail, _ = factor_availability(spec, profile)
        dp = plan_optimal_fusion(a_sizes, a_avail, comm)
        greedy = plan_eq15_greedy(a_sizes, a_avail, comm)
        t_dp = fusion_completion_time(dp, a_sizes, a_avail, comm)
        t_greedy = fusion_completion_time(greedy, a_sizes, a_avail, comm)

        dims = spec.factor_dims()
        times = {}
        for weight in ("square", "linear"):
            placement = lbp_placement(
                dims, profile.num_workers,
                profile.inverse_actual, profile.broadcast_streamed,
                weight=weight,
            )
            graph = build_inverse_graph(spec, profile, placement)
            times[weight] = run_iteration(graph, f"lbp-{weight}", name).iteration_time

        result.rows.append(
            {
                "model": name,
                "A-pass DP(s)": t_dp,
                "A-pass greedy(s)": t_greedy,
                "inverse LBP-d2(s)": times["square"],
                "inverse LBP-d(s)": times["linear"],
            }
        )
    result.notes.append(
        "The DP never loses to the greedy (it optimizes the same objective "
        "exactly); d^2 weights track the models' quadratic cost growth and "
        "should not lose to linear weights by more than scheduling noise."
    )
    return result
