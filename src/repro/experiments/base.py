"""Shared experiment plumbing: result container, registry, cached runs."""

from __future__ import annotations

__all__ = [
    "EXPERIMENTS",
    "PAPER_MODEL_NAMES",
    "VARIANT_NAMES",
    "ExperimentResult",
    "get_experiment",
    "resolve_profile",
    "run_with_report",
    "save_run_report",
    "variant_results",
]

import importlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import IterationResult
from repro.obs import recorder, recording
from repro.perf import ClusterPerfProfile, paper_cluster_profile
from repro.plan import Session

_REC = recorder()

#: Experiment id -> module path; order matches the paper's presentation.
EXPERIMENTS: Dict[str, str] = {
    "tab2": "repro.experiments.table2_models",
    "fig2": "repro.experiments.fig02_breakdown",
    "fig3": "repro.experiments.fig03_tensor_sizes",
    "fig7": "repro.experiments.fig07_comm_models",
    "fig8": "repro.experiments.fig08_inverse_model",
    "tab3": "repro.experiments.table3_iteration",
    "fig9": "repro.experiments.fig09_breakdowns",
    "fig10": "repro.experiments.fig10_pipelining",
    "fig11": "repro.experiments.fig11_crossover",
    "fig12": "repro.experiments.fig12_placement",
    "fig13": "repro.experiments.fig13_ablation",
    # Extensions beyond the paper's artifacts (DESIGN.md §4 ablations):
    "ext_scaling": "repro.experiments.ext_scaling",
    "ext_planner": "repro.experiments.ext_planner_ablation",
    "ext_convergence": "repro.experiments.ext_convergence",
    "ext_topology": "repro.experiments.ext_topology",
    "ext_topo_crossover": "repro.experiments.ext_topo_crossover",
    "ext_autotune": "repro.experiments.ext_autotune",
    "ext_precision": "repro.experiments.ext_precision",
    "ext_elastic": "repro.experiments.ext_elastic",
    "ext_comm_schemes": "repro.experiments.ext_comm_schemes",
}

PAPER_MODEL_NAMES = ("ResNet-50", "ResNet-152", "DenseNet-201", "Inception-v4")


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure plus the paper's reference data.

    ``rows`` is a list of flat dicts (one per table row / bar / series
    point).  ``notes`` records interpretation caveats that belong next to
    the numbers (also surfaced into EXPERIMENTS.md).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render as an aligned text table (what the CLI prints)."""
        header = [str(c) for c in self.columns]
        body = [[_fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in body]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        header = "| " + " | ".join(str(c) for c in self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = [
            "| " + " | ".join(_fmt(row.get(c, "")) for c in self.columns) + " |"
            for row in self.rows
        ]
        out = [f"### {self.title}", "", header, sep, *body]
        if self.notes:
            out.append("")
            out += [f"- {note}" for note in self.notes]
        return "\n".join(out)

    def column(self, name: str) -> List[object]:
        """All values of one column, row order."""
        return [row.get(name) for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def get_experiment(experiment_id: str):
    """Import and return the experiment module for ``experiment_id``."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}")
    return importlib.import_module(EXPERIMENTS[experiment_id])


def resolve_profile(profile: Optional[ClusterPerfProfile]) -> ClusterPerfProfile:
    """Default every experiment to the paper's 64-GPU testbed profile."""
    return profile if profile is not None else paper_cluster_profile()


#: The three distributed K-FAC variants every comparison prices.
VARIANT_NAMES = ("D-KFAC", "MPD-KFAC", "SPD-KFAC")


def variant_results(
    model_name: str, profile: Optional[ClusterPerfProfile] = None
) -> Dict[str, IterationResult]:
    """D/MPD/SPD results for one model.

    Memoization lives in the shared :mod:`repro.plan` Session cache,
    keyed on (model, strategy, profile) — tab3, fig9 and fig13 all hit
    the same entries instead of re-simulating per experiment.
    """
    session = Session(model_name, resolve_profile(profile))
    if _REC.enabled:
        with _REC.span("experiments.variants", model=model_name):
            return session.compare(*VARIANT_NAMES)
    return session.compare(*VARIANT_NAMES)


def run_with_report(experiment_id: str) -> Tuple[ExperimentResult, Dict[str, object]]:
    """Run one experiment under the recorder; return (result, run report).

    The run report is a JSON-ready artifact describing *how* the rows
    were produced: wall-clock, shared plan-cache traffic (hit rate), and
    the per-name span aggregates of everything the run touched.  The
    rows themselves are untouched — instrumentation is observation only,
    so they are bit-identical to a bare ``run()``.

    Recording uses the process-wide recorder with a fresh slate (any
    telemetry collected before this call is dropped, and the recorder's
    prior enabled state is restored afterwards).
    """
    from repro.plan.session import cache_info

    module = get_experiment(experiment_id)
    cache_before = cache_info()
    with recording() as rec:
        t0 = time.perf_counter()
        result = module.run()
        wall = time.perf_counter() - t0
    cache_after = cache_info()
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    lookups = hits + misses
    report: Dict[str, object] = {
        "experiment_id": experiment_id,
        "title": result.title,
        "rows": len(result.rows),
        "wall_clock_s": wall,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        },
        "obs": rec.summary(),
    }
    return result, report


def save_run_report(path, report: Dict[str, object]) -> None:
    """Write a :func:`run_with_report` artifact as deterministic JSON."""
    with open(os.fspath(path), "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
