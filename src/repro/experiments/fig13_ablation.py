"""Fig. 13 (and Table IV) — ablation of the two optimizations.

-Pipe-LBP  = bulk factor aggregation + Seq-Dist inverses (MPD-KFAC);
+Pipe-LBP  = optimal pipelining only;
-Pipe+LBP  = LBP placement only;
+Pipe+LBP  = full SPD-KFAC.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedule import build_spd_kfac_graph, run_iteration
from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    resolve_profile,
)
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile

VARIANTS = (
    ("-Pipe-LBP", False, False),
    ("+Pipe-LBP", True, False),
    ("-Pipe+LBP", False, True),
    ("+Pipe+LBP", True, True),
)


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Iteration time for the four +/-Pipe +/-LBP combinations."""
    profile = resolve_profile(profile)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13: ablation of pipelining and LBP (iteration seconds)",
        columns=("model", *(label for label, _, __ in VARIANTS), "improvement"),
    )
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        row: dict = {"model": name}
        for label, pipe, lbp in VARIANTS:
            graph = build_spd_kfac_graph(spec, profile, pipelining=pipe, lbp=lbp)
            row[label] = run_iteration(graph, label, name).iteration_time
        row["improvement"] = row["-Pipe-LBP"] / row["+Pipe+LBP"]
        result.rows.append(row)
    result.notes.append(
        "Shape targets: each optimization alone improves over -Pipe-LBP; "
        "both together are best (paper: ~10% from pipelining alone, 3-18% "
        "from LBP alone, 10-35% combined)."
    )
    return result
