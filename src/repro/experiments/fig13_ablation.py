"""Fig. 13 (and Table IV) — ablation of the two optimizations.

-Pipe-LBP  = bulk factor aggregation + Seq-Dist inverses (MPD-KFAC);
+Pipe-LBP  = optimal pipelining only;
-Pipe+LBP  = LBP placement only;
+Pipe+LBP  = full SPD-KFAC.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import (
    PAPER_MODEL_NAMES,
    ExperimentResult,
    resolve_profile,
)
from repro.perf import ClusterPerfProfile
from repro.plan import Session, strategy_registry

VARIANTS = (
    ("-Pipe-LBP", False, False),
    ("+Pipe-LBP", True, False),
    ("-Pipe+LBP", False, True),
    ("+Pipe+LBP", True, True),
)


def _variant_strategy(pipe: bool, lbp: bool):
    """SPD-KFAC with either optimization ablated, one axis at a time."""
    strategy = strategy_registry["SPD-KFAC"]
    if not pipe:  # fall back to bulk (D-KFAC-style) factor aggregation
        strategy = strategy.but(
            factor_fusion="bulk", factor_pipelining=False, combine_factor_passes=True
        )
    if not lbp:  # fall back to sequential (MPD-KFAC-style) placement
        strategy = strategy.but(placement="seq_dist")
    return strategy


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Iteration time for the four +/-Pipe +/-LBP combinations."""
    profile = resolve_profile(profile)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13: ablation of pipelining and LBP (iteration seconds)",
        columns=("model", *(label for label, _, __ in VARIANTS), "improvement"),
    )
    for name in PAPER_MODEL_NAMES:
        session = Session(name, profile)
        row: dict = {"model": name}
        for label, pipe, lbp in VARIANTS:
            row[label] = session.simulate(_variant_strategy(pipe, lbp)).iteration_time
        row["improvement"] = row["-Pipe-LBP"] / row["+Pipe+LBP"]
        result.rows.append(row)
    result.notes.append(
        "Shape targets: each optimization alone improves over -Pipe-LBP; "
        "both together are best (paper: ~10% from pipelining alone, 3-18% "
        "from LBP alone, 10-35% combined)."
    )
    return result
