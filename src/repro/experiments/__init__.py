"""Reproduction harness: one module per paper table/figure.

Every module exposes ``run(profile=None) -> ExperimentResult`` returning
the rows/series the paper reports, plus the paper's own values for
side-by-side comparison.  ``python -m repro.experiments <id>`` prints any
of them; ``python -m repro.experiments report`` regenerates
EXPERIMENTS.md.

==========  =================================================================
``tab2``    Table II — model statistics
``fig2``    Fig. 2  — iteration breakdown of the five training schemes
``fig3``    Fig. 3  — Kronecker-factor tensor-size distribution
``fig7``    Fig. 7  — all-reduce / broadcast communication model fits
``fig8``    Fig. 8  — inverse computation model fit (real CPU Cholesky)
``tab3``    Table III — wall-clock iteration time + speedups
``fig9``    Fig. 9  — per-phase breakdowns of D/MPD/SPD-KFAC
``fig10``   Fig. 10 — factor-communication pipelining strategies
``fig11``   Fig. 11 — inverse-compute vs broadcast crossover
``fig12``   Fig. 12 — inverse placement strategies
``fig13``   Fig. 13 — ablation (+/-Pipe, +/-LBP)
==========  =================================================================
"""

from repro.experiments.base import ExperimentResult, EXPERIMENTS, get_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment"]
