"""Synthetic measurement harness for the calibration experiments.

The paper estimates its model constants from one-time benchmark sweeps on
the 64-GPU testbed (Section VI-B).  We cannot time NCCL collectives here,
so the *collective* sweeps are emulated: ground-truth cost model plus
multiplicative measurement noise, which exercises the same fitting path
the paper used and lets tests assert that the fitters recover the
constants.  The *inverse* sweep is real: we time
:func:`repro.core.kfac.damped_inverse` (the same Cholesky-inverse the
optimizer runs) on this machine's CPU.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.kfac import damped_inverse
from repro.perf.models import LinearCommModel
from repro.utils.rng import SeedLike, new_rng


def emulated_collective_sweep(
    model: LinearCommModel,
    sizes: Sequence[int],
    noise: float = 0.03,
    rng: SeedLike = 0,
) -> List[float]:
    """Emulate timing a collective at each message size.

    Multiplicative log-normal-ish noise models run-to-run variance; the
    paper averaged 100 runs per point, so a few percent is realistic.
    """
    if noise < 0:
        raise ValueError("noise must be >= 0")
    rng = new_rng(rng)
    return [
        model.time(m) * float(1.0 + rng.normal(0.0, noise)) for m in sizes
    ]


def measure_inverse_times(
    dims: Sequence[int], repeats: int = 3, rng: SeedLike = 0
) -> List[float]:
    """Time real damped Cholesky inverses of random SPD matrices (CPU).

    Returns the best-of-``repeats`` wall time per dimension (best-of is
    the standard way to suppress scheduler noise in microbenchmarks).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rng = new_rng(rng)
    times: List[float] = []
    for d in dims:
        root = rng.normal(size=(d, d))
        spd = root @ root.T / d + np.eye(d)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            damped_inverse(spd, damping=1e-2)
            best = min(best, time.perf_counter() - start)
        times.append(best)
    return times


def measurement_grid(
    low: int, high: int, points: int, log_spaced: bool = True
) -> List[int]:
    """Sweep grid like the paper's ([1M, 512M] elements; d in [64, 8192])."""
    if points < 2 or low < 1 or high <= low:
        raise ValueError("need points >= 2 and 1 <= low < high")
    if log_spaced:
        values = np.logspace(np.log10(low), np.log10(high), points)
    else:
        values = np.linspace(low, high, points)
    return sorted({int(round(v)) for v in values})


def fit_quality(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """R^2 of predictions against measurements (1.0 = perfect)."""
    y = np.asarray(measured, dtype=float)
    f = np.asarray(predicted, dtype=float)
    if y.shape != f.shape or y.size < 2:
        raise ValueError("measured and predicted must be equal-length, size >= 2")
    ss_res = float(((y - f) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def paper_message_grid() -> Tuple[List[int], List[int]]:
    """The paper's sweep ranges: (collective elements, inverse dims)."""
    return (
        measurement_grid(1 << 20, 512 << 20, 10),
        measurement_grid(64, 8192, 8),
    )
