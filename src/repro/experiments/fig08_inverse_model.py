"""Fig. 8 — computation-time model of matrix inversion.

Two parts:

1. a *real* measurement: damped Cholesky inverses (the optimizer's own
   kernel) timed on this machine over a dimension sweep, fitted with the
   paper's exponential family (Eq. 26) — demonstrating the one-time
   calibration procedure end-to-end on different hardware;
2. the paper's RTX2080Ti constants evaluated over the same grid for
   comparison, including the cubic execution model used by the simulator.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.experiments.base import ExperimentResult, resolve_profile
from repro.experiments.microbench import fit_quality, measure_inverse_times, measurement_grid
from repro.perf import ClusterPerfProfile, fit_exp_compute

#: Kept modest so the sweep runs in seconds on CPU; the paper went to 8192.
DEFAULT_MAX_DIM = 1536


def run(
    profile: Optional[ClusterPerfProfile] = None, max_dim: int = DEFAULT_MAX_DIM
) -> ExperimentResult:
    """Measure CPU inverse times, fit Eq. 26, compare against paper models."""
    profile = resolve_profile(profile)
    dims = measurement_grid(64, max_dim, 7)
    measured = measure_inverse_times(dims, repeats=3, rng=0)
    fitted = fit_exp_compute(dims, measured)
    # The exponential family is fitted by least squares in log space
    # (Eq. 26 linearizes as log t = log alpha + beta d), so goodness of
    # fit is reported in that space too.
    r2 = fit_quality(
        [math.log(t) for t in measured], [math.log(fitted.time(d)) for d in dims]
    )

    result = ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8: inverse computation model (CPU-measured + paper GPU)",
        columns=("d", "measured(s)", "fit(s)", "paper_exp(s)", "sim_cubic(s)"),
    )
    for d, t in zip(dims, measured):
        result.rows.append(
            {
                "d": d,
                "measured(s)": t,
                "fit(s)": fitted.time(d),
                "paper_exp(s)": profile.inverse_estimator.time(d),
                "sim_cubic(s)": profile.inverse_actual.time(d),
            }
        )
    result.notes.append(
        f"CPU fit: alpha_inv={fitted.alpha:.3e}, beta_inv={fitted.beta:.3e}, "
        f"R2={r2:.3f} (paper GPU fit: alpha=3.64e-3, beta=4.77e-4)."
    )
    result.notes.append(
        "The exponential family fits this machine's Cholesky kernel as it "
        "fit the paper's cuSolver kernel; absolute constants differ with "
        "hardware, as expected."
    )
    return result
