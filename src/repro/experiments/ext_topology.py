"""Extension: cluster-shape x collective-algorithm sweep (not a paper figure).

The paper evaluates one flat 64-GPU InfiniBand fabric; this sweep prices
whole SPD-KFAC (and D-KFAC) iterations on *modeled* clusters instead —
NVLink vs PCIe nodes, single-rack vs multi-rack fabrics — under each
collective algorithm (flat ring, double binary tree, hierarchical), via
:func:`repro.perf.topology_profile`.  Expected shape: on any topology
with a slow outer level (ethernet spine, PCIe hosts behind a fast
switch), the hierarchical algorithms beat the flat ring, because they
shrink the message that crosses the slow link by the product of the
inner fan-outs; on the flat testbed the ring stays optimal.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.perf import ClusterPerfProfile
from repro.plan import Session, strategy_registry
from repro.topo import ClusterTopology, flat, heterogeneous, multi_node, multi_rack

ALGORITHM_NAMES = ("ring", "tree", "hierarchical")


def default_scenarios() -> Tuple[ClusterTopology, ...]:
    """The swept cluster shapes (all 64 GPUs, so only topology varies)."""
    return (
        flat(64, name="flat-64 (paper fabric)"),
        multi_node(8, 8, intra="nvlink", inter="ib", name="8 nodes x 8 nvlink / ib"),
        multi_node(16, 4, intra="pcie", inter="ethernet", name="16 nodes x 4 pcie / eth"),
        multi_rack(4, 4, 4, intra="nvlink", inter="ib", spine="ethernet",
                   name="4 racks x 4 x 4 / eth spine"),
        heterogeneous(((7, 8, "nvlink"), (1, 8, "pcie")), inter="ib",
                      name="7 nvlink + 1 pcie node"),
    )


def run(
    profile: Optional[ClusterPerfProfile] = None,
    scenarios: Optional[Sequence[ClusterTopology]] = None,
    model: str = "ResNet-50",
) -> ExperimentResult:
    """Sweep topologies x algorithms; simulate D-KFAC and SPD-KFAC on each."""
    del profile  # each cell derives its own profile from the topology
    scenarios = tuple(scenarios) if scenarios is not None else default_scenarios()
    result = ExperimentResult(
        experiment_id="ext_topology",
        title=f"Extension: {model} iteration time by cluster topology x collective algorithm",
        columns=("topology", "GPUs", "algorithm", "ar_beta(ns/elem)", "D-KFAC(s)", "SPD-KFAC(s)"),
    )
    times = {}
    for topo in scenarios:
        session = Session(model, topo)
        for algorithm in ALGORITHM_NAMES:
            # The collective axis of the strategy picks the algorithm the
            # topology-derived cost profile is built with.
            dkfac = strategy_registry["D-KFAC"].but(collective=algorithm)
            spd = strategy_registry["SPD-KFAC"].but(collective=algorithm)
            d = session.simulate(dkfac).iteration_time
            s = session.simulate(spd).iteration_time
            times[(topo.name, algorithm)] = s
            result.rows.append(
                {
                    "topology": topo.name,
                    "GPUs": topo.world_size,
                    "algorithm": algorithm,
                    "ar_beta(ns/elem)": session.profile_for(spd).allreduce.beta * 1e9,
                    "D-KFAC(s)": d,
                    "SPD-KFAC(s)": s,
                }
            )
    multirack = [t for t in scenarios if t.num_racks > 1]
    for topo in multirack:
        ring_t = times[(topo.name, "ring")]
        hier_t = times[(topo.name, "hierarchical")]
        inner_fanout = topo.world_size // topo.num_racks
        result.notes.append(
            f"{topo.name}: hierarchical all-reduce runs SPD-KFAC "
            f"{ring_t / hier_t:.2f}x faster than the flat ring "
            f"({hier_t:.4f}s vs {ring_t:.4f}s) — the spine only ever "
            f"carries 1/{inner_fanout}th of each tensor."
        )
    result.notes.append(
        "All scenarios hold 64 GPUs so differences are purely topological; "
        "compute models stay the paper's RTX2080Ti calibration."
    )
    return result
