"""Extension: robust (fault-aware) strategy choice vs the nominal one.

The paper picks SPD-KFAC's scheme by noise-free iteration time on one
healthy 64-GPU testbed.  Production clusters straggle and lose nodes,
and the right objective there is the *tail*: this sweep prices a
shortlist of distributed K-FAC schemes — the paper presets plus
SPD-KFAC placement/reduction variants — on every paper model across
three 64-GPU topologies and three fault scenarios, ranking each cell
both by nominal iteration time and by p95 makespan over seeded scenario
samples (:func:`repro.autotune.autotune` with ``objective="p95"``).

Expected shape: under mild faults the nominal winner (SPD-KFAC) keeps
the tail crown, but under severe straggling its LBP inverse placement —
tuned to minimize the *mean* inverse-stage span — loses the p95 race to
the balanced placement, whose evenly-spread inverse work gives the
slowest rank less to amplify.  That flip is the experiment's point:
at least one (model, topology, scenario) cell must pick a different
robust-optimal strategy, demonstrating that fault-aware autotuning
changes real planning decisions.  The notes also price one elastic
resize (64 -> 96 ranks) through :func:`repro.faults.replan` to show the
transition cost the planner charges.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.autotune import autotune
from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.faults import named_scenario, replan
from repro.plan import TrainingStrategy, strategy_registry
from repro.topo import named_topology

#: The swept 64-GPU cluster shapes (differences are purely topological).
TOPOLOGY_NAMES = ("flat", "multi-rack", "heterogeneous")

#: The swept fault scenario presets (see repro.faults.SCENARIO_PRESETS).
FAULT_SCENARIOS = ("stragglers", "severe-stragglers", "preemption")

#: Seeded scenario samples per candidate (common random numbers).
NUM_SAMPLES = 6


def candidate_shortlist() -> Tuple[TrainingStrategy, ...]:
    """The compared schemes: paper presets + SPD-KFAC robustness variants.

    The variants move exactly the axes fault scenarios stress — where
    the inverse work sits (placement) and how gradient reduction
    overlaps (reduction) — so nominal-vs-robust flips are attributable.
    """
    spd = strategy_registry["SPD-KFAC"]
    return (
        strategy_registry["D-KFAC"],
        strategy_registry["MPD-KFAC"],
        spd,
        spd.but(name="SPD-KFAC[balanced]", placement="balanced"),
        spd.but(name="SPD-KFAC[seq-dist]", placement="seq_dist"),
        spd.but(name="SPD-KFAC[non-dist]", placement="non_dist"),
        spd.but(name="SPD-KFAC[bulk-grad]", gradient_reduction="bulk"),
    )


def run(
    profile=None,
    scenarios: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Rank the shortlist nominally and at p95 for every swept cell."""
    del profile  # each cell derives its profiles from the topology
    scenario_names = (
        tuple(scenarios) if scenarios is not None else FAULT_SCENARIOS
    )
    models = tuple(models) if models is not None else PAPER_MODEL_NAMES

    result = ExperimentResult(
        experiment_id="ext_elastic",
        title="Extension: fault-aware (p95-robust) strategy choice vs nominal",
        columns=(
            "model", "topology", "scenario", "nominal_best", "time(s)",
            "robust_best", "p95(s)", "differs",
        ),
    )
    shortlist = candidate_shortlist()
    differing = []
    for topo_name in TOPOLOGY_NAMES:
        topology = named_topology(topo_name)
        for scenario_name in scenario_names:
            scenario = named_scenario(scenario_name)
            for model in models:
                report = autotune(
                    model,
                    topology,
                    candidates=shortlist,
                    presets=(),
                    prune=False,
                    scenario=scenario,
                    objective="p95",
                    samples=NUM_SAMPLES,
                )
                simulated = [o for o in report.outcomes if o.simulated]
                nominal = min(simulated, key=lambda o: (o.iteration_time, o.label))
                robust = min(simulated, key=lambda o: (o.robust.p95, o.label))
                differs = nominal.label != robust.label
                if differs:
                    differing.append((model, topology.name, scenario_name))
                result.rows.append(
                    {
                        "model": model,
                        "topology": topology.name,
                        "scenario": scenario_name,
                        "nominal_best": nominal.label,
                        "time(s)": nominal.iteration_time,
                        "robust_best": robust.label,
                        "p95(s)": robust.robust.p95,
                        "differs": differs,
                    }
                )

    total = len(result.rows)
    result.notes.append(
        f"The p95-robust-optimal strategy differs from the nominal-optimal "
        f"one on {len(differing)}/{total} cells"
        + (
            f" (e.g. {differing[0][0]} @ {differing[0][1]} under "
            f"{differing[0][2]})."
            if differing
            else "."
        )
    )
    result.notes.append(
        f"Each cell prices {len(shortlist)} schemes across {NUM_SAMPLES} "
        "seeded scenario samples (common random numbers, batched through "
        "simulate_batch); nominal times are the unperturbed simulations, so "
        "scenario=off reproduces the paper's ranking bit-identically."
    )
    transition = replan("ResNet-50", "SPD-KFAC", 32, 64)
    result.notes.append(
        "Elastic resizes are priced as re-plans plus state movement: "
        f"growing ResNet-50 x SPD-KFAC from 32 to 64 ranks moves "
        f"{transition.traffic.total_bytes() / 1e6:.0f} MB "
        f"({transition.transition_time * 1e3:.0f} ms) and breaks even after "
        f"{transition.break_even_iterations():.1f} iterations."
    )
    return result
