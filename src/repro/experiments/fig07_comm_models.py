"""Fig. 7 — communication models of all-reduce and broadcast.

The paper sweeps message sizes in [1M, 512M] elements, fits Eq. 14 /
Eq. 27 and reports alpha/beta.  We run the same sweep against the
emulated channel (ground truth = the paper's constants + measurement
noise) and verify the fitting pipeline recovers them.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, resolve_profile
from repro.experiments.microbench import (
    emulated_collective_sweep,
    fit_quality,
    measurement_grid,
)
from repro.perf import ClusterPerfProfile, fit_linear_comm


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Sweep, fit, and compare recovered constants with the paper's."""
    profile = resolve_profile(profile)
    sizes = measurement_grid(1 << 20, 512 << 20, 12)
    result = ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7: collective communication model fits",
        columns=("collective", "alpha", "paper_alpha", "beta", "paper_beta", "R2"),
    )
    for name, truth in (("all-reduce", profile.allreduce), ("broadcast", profile.broadcast)):
        measured = emulated_collective_sweep(truth, sizes, noise=0.03, rng=7)
        fitted = fit_linear_comm(sizes, measured)
        r2 = fit_quality(measured, [fitted.time(m) for m in sizes])
        result.rows.append(
            {
                "collective": name,
                "alpha": fitted.alpha,
                "paper_alpha": truth.alpha,
                "beta": fitted.beta,
                "paper_beta": truth.beta,
                "R2": r2,
            }
        )
    result.notes.append(
        "Ground truth for the emulated channel is the paper's published "
        "constants (alpha_ar=1.22e-2, beta_ar=1.45e-9; alpha_bcast=1.59e-2, "
        "beta_bcast=7.85e-10); the fit must recover them within noise."
    )
    return result
