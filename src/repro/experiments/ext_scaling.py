"""Extension: iteration time vs cluster size (not a paper figure).

The paper evaluates only its 64-GPU testbed; this sweep re-runs the three
D-KFAC variants on ResNet-50 across cluster sizes (collective costs
rescaled by the standard ring/tree analysis, see
:func:`repro.perf.scaled_cluster_profile`).  Expected shape: SPD-KFAC's
advantage grows with the cluster (more communication to hide and more
GPUs to spread inverses over), and every variant degrades gracefully to
single-GPU KFAC behaviour at P=1-ish scales.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.perf import ClusterPerfProfile
from repro.plan import Session

DEFAULT_CLUSTER_SIZES = (4, 8, 16, 32, 64, 128)


def run(
    profile: Optional[ClusterPerfProfile] = None,
    cluster_sizes: Sequence[int] = DEFAULT_CLUSTER_SIZES,
    model: str = "ResNet-50",
) -> ExperimentResult:
    """Sweep cluster sizes for one model (default ResNet-50)."""
    del profile  # the sweep constructs its own per-P profiles
    result = ExperimentResult(
        experiment_id="ext_scaling",
        title=f"Extension: {model} iteration time vs cluster size",
        columns=("GPUs", "D-KFAC", "MPD-KFAC", "SPD-KFAC", "SP1", "SP2"),
    )
    for num_gpus in cluster_sizes:
        session = Session(model, num_gpus)
        d = session.simulate("D-KFAC").iteration_time
        m = session.simulate("MPD-KFAC").iteration_time
        s = session.simulate("SPD-KFAC").iteration_time
        result.rows.append(
            {"GPUs": num_gpus, "D-KFAC": d, "MPD-KFAC": m, "SPD-KFAC": s,
             "SP1": d / s, "SP2": m / s}
        )
    result.notes.append(
        "Expected shape: SP1 grows with cluster size (larger alpha terms "
        "leave more communication for pipelining/LBP to remove)."
    )
    return result
