"""Extension: iteration time vs cluster size (not a paper figure).

The paper evaluates only its 64-GPU testbed; this sweep re-runs the three
D-KFAC variants on ResNet-50 across cluster sizes (collective costs
rescaled by the standard ring/tree analysis, see
:func:`repro.perf.scaled_cluster_profile`).  Expected shape: SPD-KFAC's
advantage grows with the cluster (more communication to hide and more
GPUs to spread inverses over), and every variant degrades gracefully to
single-GPU KFAC behaviour at P=1-ish scales.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.schedule import (
    build_dkfac_graph,
    build_mpd_kfac_graph,
    build_spd_kfac_graph,
    run_iteration,
)
from repro.experiments.base import ExperimentResult
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile, scaled_cluster_profile

DEFAULT_CLUSTER_SIZES = (4, 8, 16, 32, 64, 128)


def run(
    profile: Optional[ClusterPerfProfile] = None,
    cluster_sizes: Sequence[int] = DEFAULT_CLUSTER_SIZES,
    model: str = "ResNet-50",
) -> ExperimentResult:
    """Sweep cluster sizes for one model (default ResNet-50)."""
    del profile  # the sweep constructs its own per-P profiles
    spec = get_model_spec(model)
    result = ExperimentResult(
        experiment_id="ext_scaling",
        title=f"Extension: {model} iteration time vs cluster size",
        columns=("GPUs", "D-KFAC", "MPD-KFAC", "SPD-KFAC", "SP1", "SP2"),
    )
    for num_gpus in cluster_sizes:
        p = scaled_cluster_profile(num_gpus)
        d = run_iteration(build_dkfac_graph(spec, p), "D-KFAC", model).iteration_time
        m = run_iteration(build_mpd_kfac_graph(spec, p), "MPD-KFAC", model).iteration_time
        s = run_iteration(build_spd_kfac_graph(spec, p), "SPD-KFAC", model).iteration_time
        result.rows.append(
            {"GPUs": num_gpus, "D-KFAC": d, "MPD-KFAC": m, "SPD-KFAC": s,
             "SP1": d / s, "SP2": m / s}
        )
    result.notes.append(
        "Expected shape: SP1 grows with cluster size (larger alpha terms "
        "leave more communication for pipelining/LBP to remove)."
    )
    return result
