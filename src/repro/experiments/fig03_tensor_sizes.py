"""Fig. 3 — Kronecker-factor tensor-size distribution of the four CNNs.

The scatter of Fig. 3 shows, per model, how many factors have a given
number of communicated elements (upper triangle).  We report the
distribution summary the figure conveys: count of factors per decade of
size plus the extremes (the paper quotes ResNet-50's min 2,080 and max
10,619,136 explicitly).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional

from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile

DECADES = (2, 3, 4, 5, 6, 7)  # 10^2 .. 10^7 element buckets


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Histogram factor sizes per model (decade buckets + extremes)."""
    del profile
    result = ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: factor size distribution (count per size decade)",
        columns=("model", "factors", *(f"1e{d}" for d in DECADES), "min", "max"),
    )
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        sizes = spec.tensor_size_distribution()
        histogram = Counter(
            min(max(int(math.floor(math.log10(s))), DECADES[0]), DECADES[-1]) for s in sizes
        )
        row = {"model": name, "factors": len(sizes), "min": min(sizes), "max": max(sizes)}
        for d in DECADES:
            row[f"1e{d}"] = histogram.get(d, 0)
        result.rows.append(row)
    result.notes.append(
        "Paper quotes ResNet-50 extremes 2,080 and 10,619,136 communicated "
        "elements; both must match exactly."
    )
    return result
