"""Table II — DNN details: parameters, K-FAC layers, factor element counts."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import PAPER_MODEL_NAMES, ExperimentResult
from repro.models import get_model_spec
from repro.perf import ClusterPerfProfile

#: The paper's Table II values: (params M, layers, batch, #As M, #Gs M).
PAPER_TABLE2 = {
    "ResNet-50": (25.6, 54, 32, 62.3, 14.6),
    "ResNet-152": (60.2, 156, 8, 162.0, 32.9),
    "DenseNet-201": (20.0, 201, 16, 131.0, 18.0),
    "Inception-v4": (42.7, 150, 16, 116.4, 4.7),
}


def run(profile: Optional[ClusterPerfProfile] = None) -> ExperimentResult:
    """Compute Table II from our architecture specs and compare."""
    del profile  # model statistics are profile-independent
    result = ExperimentResult(
        experiment_id="tab2",
        title="Table II: DNN details (ours vs paper)",
        columns=(
            "model", "params(M)", "paper", "layers", "paper#L",
            "batch", "As(M)", "paperAs", "Gs(M)", "paperGs",
        ),
    )
    for name in PAPER_MODEL_NAMES:
        spec = get_model_spec(name)
        p_params, p_layers, p_batch, p_as, p_gs = PAPER_TABLE2[name]
        result.rows.append(
            {
                "model": name,
                "params(M)": spec.num_params / 1e6,
                "paper": p_params,
                "layers": spec.num_layers,
                "paper#L": p_layers,
                "batch": spec.batch_size,
                "As(M)": spec.total_a_elements / 1e6,
                "paperAs": p_as,
                "Gs(M)": spec.total_g_elements / 1e6,
                "paperGs": p_gs,
            }
        )
    result.notes.append(
        "DenseNet-201 #Gs: our count is 1.8M (98 factors of d=32 and 98 of "
        "d=128 cannot reach 18.0M); #As matches the paper exactly at 131.0M "
        "with the same methodology, so the paper's 18.0 is likely a typo for 1.8."
    )
    return result
