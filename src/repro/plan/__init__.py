"""Strategy / Plan / Session — the composable planning API.

Three nouns replace the historical per-algorithm ``build_*_graph``
builders:

* :class:`TrainingStrategy` — every planner axis (gradient reduction,
  factor fusion + launch mode, inverse placement, collective algorithm)
  as one frozen dataclass; :data:`strategy_registry` names the paper's
  schemes (``"SGD"``, ``"S-SGD"``, ``"KFAC"``, ``"D-KFAC"``,
  ``"MPD-KFAC"``, ``"SPD-KFAC"``) as presets, and
  :meth:`TrainingStrategy.but` derives arbitrary combinations.
* :class:`Plan` — the resolved artifact (fusion plans, placement table,
  task-graph metadata, predicted breakdown) with lossless
  ``to_json`` / ``from_json``.
* :class:`Session` — the facade ``Session(model, cluster)`` with
  ``.plan(strategy)`` and ``.simulate(plan)``, backed by a shared LRU
  plan/result cache.

Quickstart::

    from repro import Session, strategy_registry

    session = Session("ResNet-50", 64)
    plan = session.plan("SPD-KFAC")
    print(session.simulate(plan).iteration_time)
"""

from repro.plan.strategy import (
    COLLECTIVE_ALGORITHMS,
    GRADIENT_REDUCTIONS,
    WIRE_DTYPE_NAMES,
    StrategyRegistry,
    TrainingStrategy,
    strategy_registry,
)
from repro.plan.plan import PLAN_FORMAT_VERSION, Plan, count_tasks
from repro.plan.session import (
    Session,
    build_phase_graphs,
    build_strategy_graph,
    cache_info,
    clear_caches,
    get_plan_store,
    plan_store_key,
    resolve_plan_parts,
    resolve_strategy,
    set_plan_store,
    wire_axis_kwargs,
)

__all__ = [
    "TrainingStrategy",
    "StrategyRegistry",
    "strategy_registry",
    "GRADIENT_REDUCTIONS",
    "COLLECTIVE_ALGORITHMS",
    "WIRE_DTYPE_NAMES",
    "Plan",
    "PLAN_FORMAT_VERSION",
    "count_tasks",
    "Session",
    "build_strategy_graph",
    "build_phase_graphs",
    "wire_axis_kwargs",
    "resolve_plan_parts",
    "resolve_strategy",
    "clear_caches",
    "cache_info",
    "set_plan_store",
    "get_plan_store",
    "plan_store_key",
]
