"""The resolved planning artifact: strategy + cluster -> :class:`Plan`.

A :class:`Plan` is everything the planner decided for one (model,
cluster, strategy) triple — the factor-communication fusion plan, the
WFBP gradient buckets, the inverse placement table, task-graph metadata
and the predicted timing breakdown — in one immutable, comparable
value.  ``to_json`` / ``from_json`` are lossless (floats survive via
``repr`` round-tripping), so plans can be cached on disk, diffed in
review, and re-simulated bit-identically::

    plan = Session("ResNet-50").plan("SPD-KFAC")
    text = plan.to_json(indent=2)          # diffable artifact
    again = Plan.from_json(text)
    assert again == plan                   # lossless
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.fusion import FusionPlan
from repro.core.pipeline import FactorCommPlan, FactorCommStrategy
from repro.core.placement import Placement
from repro.core.schedule import build_graph_from_parts
from repro.models import get_model_spec
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.perf.models import (
    CubicComputeModel,
    ExpComputeModel,
    FlopsComputeModel,
    LinearCommModel,
)
from repro.plan.strategy import TrainingStrategy
from repro.sim import TaskGraph
from repro.utils.digest import content_digest

#: Current plan format.  Version 2 added the strategy's wire-precision /
#: compression / update-interval axes; version 3 the ``comm_scheme``
#: axis.  Documents written before an axis existed still load, with
#: every new axis at its paper-faithful default.
PLAN_FORMAT_VERSION = 3

#: Formats :meth:`Plan.from_dict` can read.
READABLE_PLAN_FORMAT_VERSIONS = (1, 2, 3)

_COST_MODEL_CLASSES = {
    cls.__name__: cls
    for cls in (LinearCommModel, ExpComputeModel, CubicComputeModel, FlopsComputeModel)
}


def _cost_model_to_dict(model: object) -> Dict[str, Any]:
    cls = type(model)
    registered = _COST_MODEL_CLASSES.get(cls.__name__)
    if registered is not cls:
        raise TypeError(
            f"cannot serialize cost model of type {cls.__qualname__}; "
            f"serializable families: {sorted(_COST_MODEL_CLASSES)}"
        )
    return {"kind": cls.__name__, **{
        f.name: getattr(model, f.name) for f in dataclasses.fields(cls)
    }}


def _cost_model_from_dict(data: Dict[str, Any]) -> object:
    kind = data.get("kind")
    if kind not in _COST_MODEL_CLASSES:
        raise ValueError(f"unknown cost-model kind {kind!r}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    return _COST_MODEL_CLASSES[kind](**fields)


def _profile_to_dict(profile: ClusterPerfProfile) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(ClusterPerfProfile):
        value = getattr(profile, f.name)
        if f.name in ("num_workers", "fusion_threshold_elements"):
            out[f.name] = value
        else:
            out[f.name] = _cost_model_to_dict(value)
    return out


def _profile_from_dict(data: Dict[str, Any]) -> ClusterPerfProfile:
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(ClusterPerfProfile):
        value = data[f.name]
        if f.name in ("num_workers", "fusion_threshold_elements"):
            kwargs[f.name] = value
        else:
            kwargs[f.name] = _cost_model_from_dict(value)
    return ClusterPerfProfile(**kwargs)


def _buckets_to_list(plan: FusionPlan) -> list:
    return [list(bucket) for bucket in plan.buckets]


def _buckets_from_list(data: list) -> FusionPlan:
    return FusionPlan(tuple(tuple(b) for b in data))


@dataclass(frozen=True)
class Plan:
    """Everything resolved for one (model, cluster, strategy) triple.

    ``predicted_makespan`` / ``predicted_breakdown`` are the simulated
    iteration time and its six paper categories at planning time;
    :meth:`build_graph` reconstructs the exact task graph so a loaded
    plan re-simulates bit-identically.
    """

    strategy: TrainingStrategy
    model: str
    num_ranks: int
    profile: ClusterPerfProfile
    grad_plan: Optional[FusionPlan]
    factor_plan: Optional[FactorCommPlan]
    placement: Optional[Placement]
    predicted_makespan: float
    predicted_breakdown: Tuple[Tuple[str, float], ...]
    task_counts: Tuple[Tuple[str, int], ...]

    # -- views -------------------------------------------------------------

    def breakdown_dict(self) -> Dict[str, float]:
        """The predicted paper-category breakdown as a dict."""
        return dict(self.predicted_breakdown)

    def build_graph(self, spec: Optional[ModelSpec] = None) -> TaskGraph:
        """Reconstruct the *refresh-iteration* task graph this plan describes.

        For a stale-refresh plan (update intervals > 1) this is the full
        refresh shape only — its simulated makespan exceeds the plan's
        cycle-averaged :attr:`predicted_makespan`.  Use
        :meth:`build_phase_graphs` (or ``Session.simulate(plan)``) to
        reproduce the amortized number.

        ``spec`` is only needed for models outside the paper catalog
        (e.g. synthetic test specs); it must match :attr:`model`.
        """
        if spec is None:
            spec = get_model_spec(self.model)
        elif spec.name != self.model:
            raise ValueError(
                f"spec {spec.name!r} does not match the plan's model {self.model!r}"
            )
        return build_graph_from_parts(
            spec,
            self.profile,
            num_ranks=self.num_ranks,
            kfac=self.strategy.second_order,
            fplan=self.factor_plan,
            grad_plan=self.grad_plan,
            placement=self.placement,
            include_solve=self.strategy.include_solve,
            grad_dtype=self.strategy.grad_dtype,
            factor_dtype=self.strategy.factor_dtype,
            inverse_dtype=self.strategy.inverse_dtype,
            grad_compression=self.strategy.grad_compression,
            comm_scheme=self.strategy.comm_scheme,
        )

    def build_phase_graphs(self, spec: Optional[ModelSpec] = None) -> Dict[str, TaskGraph]:
        """One task graph per distinct iteration shape of the refresh cycle.

        Non-stale plans return ``{"refresh": graph}``; stale plans add
        the factor-only-refresh and/or steady-state shapes.  Simulating
        each and cycle-averaging with
        :func:`repro.sim.amortized_makespan` reproduces
        :attr:`predicted_makespan` exactly.
        """
        # Local import: repro.plan.session composes Plans, not vice versa.
        from repro.plan.session import build_phase_graphs

        if spec is None:
            spec = get_model_spec(self.model)
        elif spec.name != self.model:
            raise ValueError(
                f"spec {spec.name!r} does not match the plan's model {self.model!r}"
            )
        return build_phase_graphs(
            spec,
            self.profile,
            self.strategy,
            num_ranks=self.num_ranks,
            grad_plan=self.grad_plan,
            fplan=self.factor_plan,
            placement=self.placement,
        )

    def summary(self) -> str:
        """Human-readable multi-line plan report (what the CLI prints)."""
        lines = [
            f"plan: {self.model} x {self.strategy.name} "
            f"({self.num_ranks} rank{'s' if self.num_ranks != 1 else ''})",
            f"  strategy:   {self.strategy.describe()}",
        ]
        if self.grad_plan is not None:
            lines.append(
                f"  gradients:  {self.grad_plan.num_buckets} WFBP bucket(s) "
                f"over {self.grad_plan.num_tensors} layers"
            )
        if self.factor_plan is not None:
            launch = "post-pass" if self.factor_plan.launch_after_pass else "pipelined"
            merged = " (A+G merged)" if self.factor_plan.combine_passes else ""
            lines.append(
                f"  factors:    A in {self.factor_plan.a_plan.num_buckets}, "
                f"G in {self.factor_plan.g_plan.num_buckets} bucket(s), "
                f"{launch} launch{merged}"
            )
        if self.placement is not None:
            n = len(self.placement.dims)
            cts = self.placement.num_cts()
            lines.append(
                f"  inverses:   {n} tensors, {cts} CT (broadcast) / "
                f"{n - cts} NCT (computed everywhere)"
            )
        counts = dict(self.task_counts)
        lines.append(
            f"  task graph: {counts.get('tasks', 0)} tasks, "
            f"{counts.get('collectives', 0)} collectives"
        )
        cycle = self.strategy.inverse_update_interval
        amortized = (
            f" (cycle average over {cycle} iterations)"
            if self.strategy.stale_updates
            else ""
        )
        lines.append(
            f"  predicted:  {self.predicted_makespan:.4f} s/iteration{amortized}"
        )
        for category, seconds in self.predicted_breakdown:
            if seconds > 0:
                lines.append(f"    {category:<12} {seconds:.4f} s")
        return "\n".join(lines)

    def digest(self) -> str:
        """Stable 16-hex-char content hash of the resolved plan.

        Hashes the serialized form minus the format version, so the
        digest survives format bumps that merely re-encode the same
        plan.  Equal digests mean equal plans (same strategy axes, cost
        profile, fusion buckets, placement table, and predictions).
        """
        payload = self.to_dict()
        del payload["version"]
        # Like TrainingStrategy.digest(): the paper scheme predates the
        # comm_scheme axis, so omit its default to keep pre-axis plan
        # digests (and the stores keyed on them) stable.
        if payload["strategy"].get("comm_scheme") == "paper":
            payload["strategy"] = dict(payload["strategy"])
            del payload["strategy"]["comm_scheme"]
        return content_digest({"kind": "plan", **payload})

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full plan as a JSON-serializable dict (see :meth:`to_json`)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "strategy": self.strategy.to_dict(),
            "model": self.model,
            "num_ranks": self.num_ranks,
            "profile": _profile_to_dict(self.profile),
            "grad_plan": (
                None if self.grad_plan is None else _buckets_to_list(self.grad_plan)
            ),
            "factor_plan": (
                None
                if self.factor_plan is None
                else {
                    "strategy": self.factor_plan.strategy.value,
                    "a_buckets": _buckets_to_list(self.factor_plan.a_plan),
                    "g_buckets": _buckets_to_list(self.factor_plan.g_plan),
                    "launch_after_pass": self.factor_plan.launch_after_pass,
                    "combine_passes": self.factor_plan.combine_passes,
                }
            ),
            "placement": (
                None
                if self.placement is None
                else {
                    "num_ranks": self.placement.num_ranks,
                    "dims": list(self.placement.dims),
                    "assignments": [list(r) for r in self.placement.assignments],
                }
            ),
            "predicted_makespan": self.predicted_makespan,
            "predicted_breakdown": [[c, v] for c, v in self.predicted_breakdown],
            "task_counts": [[k, v] for k, v in self.task_counts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Plan":
        version = data.get("version")
        if version not in READABLE_PLAN_FORMAT_VERSIONS:
            raise ValueError(
                f"unsupported plan format version {version!r} "
                f"(this build reads versions {READABLE_PLAN_FORMAT_VERSIONS})"
            )
        factor = data["factor_plan"]
        placement = data["placement"]
        return cls(
            strategy=TrainingStrategy.from_dict(data["strategy"]),
            model=data["model"],
            num_ranks=data["num_ranks"],
            profile=_profile_from_dict(data["profile"]),
            grad_plan=(
                None if data["grad_plan"] is None else _buckets_from_list(data["grad_plan"])
            ),
            factor_plan=(
                None
                if factor is None
                else FactorCommPlan(
                    strategy=FactorCommStrategy(factor["strategy"]),
                    a_plan=_buckets_from_list(factor["a_buckets"]),
                    g_plan=_buckets_from_list(factor["g_buckets"]),
                    launch_after_pass=factor["launch_after_pass"],
                    combine_passes=factor["combine_passes"],
                )
            ),
            placement=(
                None
                if placement is None
                else Placement(
                    num_ranks=placement["num_ranks"],
                    dims=tuple(placement["dims"]),
                    assignments=tuple(tuple(r) for r in placement["assignments"]),
                )
            ),
            predicted_makespan=data["predicted_makespan"],
            predicted_breakdown=tuple(
                (c, v) for c, v in data["predicted_breakdown"]
            ),
            task_counts=tuple((k, v) for k, v in data["task_counts"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Lossless JSON (float repr round-trips exactly)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the plan's JSON document (plus trailing newline) to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_json(indent=indent))
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "Plan":
        """Read a plan previously written by :meth:`save`."""
        with open(path) as f:
            return cls.from_json(f.read())


def count_tasks(graph: TaskGraph) -> Tuple[Tuple[str, int], ...]:
    """Task-graph metadata recorded on plans: totals plus per-phase counts."""
    per_phase = graph.phase_counts()
    collectives = int(graph.columns().is_comm.sum())
    items = [("tasks", len(graph)), ("collectives", collectives)]
    items.extend(sorted(per_phase.items()))
    return tuple(items)
