"""Declarative training strategies: every planner axis as data.

SPD-KFAC is a *composition* of independent design choices — how
gradients are reduced, how Kronecker factors are fused and when their
all-reduces launch, where the matrix inverses run, which collective
algorithm the cluster uses.  :class:`TrainingStrategy` captures each
choice as a field of a frozen dataclass, so "an algorithm" becomes a
value that can be stored, compared, serialized, swept over, and tweaked
one axis at a time::

    from repro.plan import strategy_registry

    spd = strategy_registry["SPD-KFAC"]
    eager = spd.but(factor_pipelining=False)        # SPD fusion, no overlap
    tree = spd.but(collective="tree")               # same plan, tree all-reduce

:data:`strategy_registry` names the paper's six training schemes (SGD,
S-SGD, KFAC, D-KFAC, MPD-KFAC, SPD-KFAC) as presets; arbitrary
combinations — including ones the old per-algorithm builders could not
express — are one :meth:`TrainingStrategy.but` call away.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.comm.wire import WIRE_DTYPES
from repro.core.distributed import InverseStrategy
from repro.utils.digest import content_digest
from repro.core.pipeline import FACTOR_FUSION_POLICIES, FactorCommStrategy, _CANONICAL_AXES
from repro.core.schedule import PLACEMENT_STRATEGIES

#: How gradients are synchronized each iteration.
GRADIENT_REDUCTIONS = ("none", "wfbp", "bulk")

#: Collective-algorithm choices (only consulted when the Session's
#: cluster is a :class:`repro.topo.ClusterTopology`; a plain profile
#: already encodes its collectives).
COLLECTIVE_ALGORITHMS = ("auto", "ring", "tree", "hierarchical")

#: Wire dtypes a traffic class may use (``fp32`` is the paper's format).
WIRE_DTYPE_NAMES: Tuple[str, ...] = tuple(WIRE_DTYPES)

#: Communication schemes for distributing K-FAC preconditioning work
#: (Pauloski et al., arXiv:2007.00784).  ``"paper"`` is SPD-KFAC's
#: broadcast-the-inverses scheme; ``"comm_opt"`` preconditions with the
#: resident (stale) inverses so the refresh overlaps the optimizer step;
#: ``"mem_opt"`` keeps each layer's inverses on one owner rank and
#: broadcasts only the small preconditioned gradient every iteration.
COMM_SCHEMES = ("paper", "comm_opt", "mem_opt")


def _check_choice(field_name: str, value: object, options: Tuple[str, ...]) -> None:
    if value not in options:
        raise ValueError(
            f"invalid TrainingStrategy.{field_name} {value!r}; options: {options}"
        )


def _check_interval(field_name: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(
            f"TrainingStrategy.{field_name} must be an integer >= 1, got {value!r}"
        )


@dataclass(frozen=True)
class TrainingStrategy:
    """One point in the distributed-training design space.

    ================== ====================================================
    ``second_order``    K-FAC preconditioning on/off (off = plain SGD)
    ``distributed``     run on the whole cluster vs a single device
    ``gradient_reduction``  ``"wfbp"`` (threshold-fused all-reduce during
                        backward), ``"bulk"`` (one all-reduce after
                        backward), or ``"none"`` (single device)
    ``factor_fusion``   bucket partition for factor all-reduces:
                        ``"bulk"`` / ``"none"`` / ``"threshold"`` /
                        ``"optimal"`` (the paper's Eq. 15 plan)
    ``factor_pipelining``  launch each bucket the moment its last factor
                        is computed (overlapping compute) vs eagerly
                        after the whole pass
    ``combine_factor_passes``  merge the A and G passes into a single
                        post-backward all-reduce (D-KFAC's bulk mode)
    ``placement``       inverse placement policy: ``"non_dist"`` /
                        ``"seq_dist"`` / ``"balanced"`` / ``"lbp"``
                        (Algorithm 1); :attr:`inverse_strategy` exposes
                        the same choice as the numeric optimizer's
                        :class:`~repro.core.distributed.InverseStrategy`
    ``include_solve``   ``False`` drops the inverse/precondition stage to
                        isolate the factor pipeline (Fig. 10)
    ``collective``      collective algorithm on modeled topologies:
                        ``"auto"`` / ``"ring"`` / ``"tree"`` /
                        ``"hierarchical"``
    ``grad_dtype``      wire dtype of gradient all-reduces:
                        ``"fp32"`` (paper) / ``"fp16"`` / ``"bf16"``
    ``factor_dtype``    wire dtype of Kronecker-factor all-reduces
    ``inverse_dtype``   wire dtype of inverse broadcasts
    ``grad_compression``  top-k kept fraction of gradient all-reduces in
                        ``(0, 1]``; ``1.0`` (paper) disables compression,
                        smaller values ship that fraction of the values
                        plus an int32 index each
    ``factor_update_interval``  refresh factors (compute + all-reduce)
                        every ``K_f`` iterations (KAISA-style staleness;
                        1 = the paper's every-iteration refresh)
    ``inverse_update_interval``  recompute/broadcast inverses every
                        ``K_inv`` iterations; must be a multiple of
                        ``factor_update_interval`` (inverses are rebuilt
                        from freshly aggregated factors)
    ``comm_scheme``     how preconditioning work reaches the ranks:
                        ``"paper"`` (SPD-KFAC: broadcast packed
                        inverses, precondition everywhere),
                        ``"comm_opt"`` (precondition with the resident
                        stale inverses so the refresh overlaps the
                        optimizer step), or ``"mem_opt"`` (one owner
                        rank per layer computes inverses *and* the
                        preconditioned gradient, broadcasting only the
                        small gradient every iteration)
    ================== ====================================================

    Defaults reproduce the paper bit-identically; every new axis has to
    be opted into.

    Examples
    --------
    >>> spd = TrainingStrategy(name="SPD-KFAC")
    >>> cheap = spd.but(factor_dtype="fp16", inverse_update_interval=4)
    >>> cheap.factor_dtype, cheap.inverse_update_interval
    ('fp16', 4)
    >>> spd == cheap.but(factor_dtype="fp32", inverse_update_interval=1)
    True
    """

    name: str = "custom"
    second_order: bool = True
    distributed: bool = True
    gradient_reduction: str = "wfbp"
    factor_fusion: str = "optimal"
    factor_pipelining: bool = True
    combine_factor_passes: bool = False
    placement: str = "lbp"
    include_solve: bool = True
    collective: str = "auto"
    grad_dtype: str = "fp32"
    factor_dtype: str = "fp32"
    inverse_dtype: str = "fp32"
    grad_compression: float = 1.0
    factor_update_interval: int = 1
    inverse_update_interval: int = 1
    comm_scheme: str = "paper"

    def __post_init__(self) -> None:
        _check_choice("gradient_reduction", self.gradient_reduction, GRADIENT_REDUCTIONS)
        _check_choice("factor_fusion", self.factor_fusion, FACTOR_FUSION_POLICIES)
        _check_choice("placement", self.placement, PLACEMENT_STRATEGIES)
        _check_choice("collective", self.collective, COLLECTIVE_ALGORITHMS)
        _check_choice("grad_dtype", self.grad_dtype, WIRE_DTYPE_NAMES)
        _check_choice("factor_dtype", self.factor_dtype, WIRE_DTYPE_NAMES)
        _check_choice("inverse_dtype", self.inverse_dtype, WIRE_DTYPE_NAMES)
        if not (
            isinstance(self.grad_compression, (int, float))
            and not isinstance(self.grad_compression, bool)
            and 0.0 < float(self.grad_compression) <= 1.0
        ):
            raise ValueError(
                "TrainingStrategy.grad_compression must be a kept fraction in "
                f"(0, 1], got {self.grad_compression!r}"
            )
        _check_interval("factor_update_interval", self.factor_update_interval)
        _check_interval("inverse_update_interval", self.inverse_update_interval)
        if self.distributed and self.gradient_reduction == "none":
            raise ValueError(
                "distributed training must reduce gradients; pick "
                "gradient_reduction='wfbp' or 'bulk' (or distributed=False)"
            )
        if not self.distributed and self.gradient_reduction != "none":
            raise ValueError(
                "single-device training has no gradients to reduce; use "
                "gradient_reduction='none'"
            )
        if not self.distributed and self.second_order and self.placement != "non_dist":
            raise ValueError(
                "single-device K-FAC cannot distribute inverse workloads; "
                "use placement='non_dist'"
            )
        if self.combine_factor_passes and (
            self.factor_fusion != "bulk" or self.factor_pipelining
        ):
            raise ValueError(
                "combine_factor_passes merges A and G into one post-backward "
                "all-reduce; it requires factor_fusion='bulk' and "
                "factor_pipelining=False"
            )
        if not self.second_order and not self.include_solve:
            raise ValueError(
                "include_solve=False isolates the K-FAC inverse stage and is "
                "meaningless for first-order strategies"
            )
        reduces_gradients = self.distributed and self.gradient_reduction != "none"
        if not reduces_gradients and (
            self.grad_dtype != "fp32" or self.grad_compression != 1.0
        ):
            raise ValueError(
                "grad_dtype/grad_compression shape gradient all-reduces; this "
                "strategy reduces no gradients (single device) so they must "
                "stay at their fp32/1.0 defaults"
            )
        comm_factors = self.second_order and self.distributed
        if not comm_factors and (
            self.factor_dtype != "fp32" or self.inverse_dtype != "fp32"
        ):
            raise ValueError(
                "factor_dtype/inverse_dtype shape factor all-reduces and "
                "inverse broadcasts; this strategy communicates neither "
                "(first-order or single device) so they must stay 'fp32'"
            )
        stale = self.factor_update_interval > 1 or self.inverse_update_interval > 1
        if stale and not self.second_order:
            raise ValueError(
                "factor/inverse update intervals amortize K-FAC refresh work; "
                "first-order strategies have none (keep both intervals at 1)"
            )
        if stale and not self.include_solve:
            raise ValueError(
                "update intervals > 1 price amortized steady-state iterations; "
                "include_solve=False is a single-refresh diagnostic mode "
                "(keep both intervals at 1)"
            )
        if self.inverse_update_interval % self.factor_update_interval != 0:
            raise ValueError(
                "inverse_update_interval must be a multiple of "
                "factor_update_interval (inverses are rebuilt from freshly "
                f"aggregated factors); got {self.inverse_update_interval} "
                f"vs {self.factor_update_interval}"
            )
        _check_choice("comm_scheme", self.comm_scheme, COMM_SCHEMES)
        if self.comm_scheme != "paper":
            if not (self.second_order and self.distributed):
                raise ValueError(
                    "comm_scheme reorganizes distributed K-FAC "
                    "preconditioning; first-order or single-device "
                    "strategies have nothing to reorganize (keep "
                    "comm_scheme='paper')"
                )
            if not self.include_solve:
                raise ValueError(
                    "include_solve=False drops the inverse/precondition "
                    "stage that comm_scheme reorganizes; keep "
                    "comm_scheme='paper' for the factor-pipeline diagnostic"
                )
        if self.comm_scheme == "mem_opt" and self.placement == "non_dist":
            raise ValueError(
                "mem_opt assigns each layer's inverses and preconditioning "
                "to a single owner rank; placement='non_dist' (every rank "
                "inverts everything) contradicts that — pick 'seq_dist', "
                "'balanced', or 'lbp'"
            )

    # -- derived views -----------------------------------------------------

    @property
    def inverse_strategy(self) -> InverseStrategy:
        """The numeric optimizer's enum for this placement policy."""
        return InverseStrategy(self.placement)

    @property
    def factor_comm_strategy(self) -> Optional[FactorCommStrategy]:
        """The named Fig. 10 strategy these factor axes coincide with,
        or ``None`` for custom combinations (or first-order training)."""
        if not self.second_order or not self.distributed:
            return None
        return _CANONICAL_AXES.get(
            (self.factor_fusion, self.factor_pipelining, self.combine_factor_passes)
        )

    def but(self, **overrides: object) -> "TrainingStrategy":
        """A copy with some axes replaced (name preserved unless given)."""
        return dataclasses.replace(self, **overrides)

    @property
    def stale_updates(self) -> bool:
        """Whether any refresh interval exceeds the paper's every-iteration 1."""
        return self.factor_update_interval > 1 or self.inverse_update_interval > 1

    def describe(self) -> str:
        """One-line human summary of every axis.

        Examples
        --------
        >>> print(TrainingStrategy(name="SPD-KFAC").describe())
        SPD-KFAC: second-order (K-FAC), distributed, grad=wfbp, factors=optimal/pipelined, placement=lbp, collective=auto
        """
        if not self.second_order:
            order = "first-order"
            factors = "no factors"
        else:
            order = "second-order (K-FAC)"
            launch = "pipelined" if self.factor_pipelining else "post-pass"
            combined = "+combined-passes" if self.combine_factor_passes else ""
            factors = (
                f"factors={self.factor_fusion}/{launch}{combined}, "
                f"placement={self.placement}"
            )
            if not self.include_solve:
                factors += ", solve-stage off"
        scope = "distributed" if self.distributed else "single-device"
        extras = []
        grad = self.gradient_reduction
        if self.grad_dtype != "fp32":
            grad += f"@{self.grad_dtype}"
        if self.grad_compression != 1.0:
            grad += f"/top{self.grad_compression:g}"
        if self.factor_dtype != "fp32":
            extras.append(f"factor-wire={self.factor_dtype}")
        if self.inverse_dtype != "fp32":
            extras.append(f"inverse-wire={self.inverse_dtype}")
        if self.stale_updates:
            extras.append(
                f"refresh=K_f{self.factor_update_interval}/"
                f"K_inv{self.inverse_update_interval}"
            )
        if self.comm_scheme != "paper":
            extras.append(f"comm-scheme={self.comm_scheme}")
        extra = (", " + ", ".join(extras)) if extras else ""
        return (
            f"{self.name}: {order}, {scope}, grad={grad}, "
            f"{factors}, collective={self.collective}{extra}"
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Every axis as a plain JSON-serializable dict.

        Examples
        --------
        >>> TrainingStrategy().to_dict()["placement"]
        'lbp'
        """
        return dataclasses.asdict(self)

    def digest(self) -> str:
        """Stable 16-hex-char content hash of every axis (name excluded).

        Two strategies with identical axes share a digest even under
        different display names, so cache keys follow *behavior*:
        ``spd.but(name="renamed")`` hits the same store entries as
        ``spd``.  Stable across processes and Python versions
        (sorted-key canonical JSON + sha256, see
        :func:`repro.utils.digest.content_digest`).

        Examples
        --------
        >>> spd = TrainingStrategy(name="SPD-KFAC")
        >>> spd.digest() == spd.but(name="alias").digest()
        True
        >>> spd.digest() == spd.but(collective="tree").digest()
        False
        """
        axes = self.to_dict()
        del axes["name"]
        # Compression is numeric: normalize so 1 and 1.0 share a digest.
        axes["grad_compression"] = float(axes["grad_compression"])
        # The paper scheme predates the comm_scheme axis: omit it at its
        # default so pre-axis store/LRU entries stay warm.
        if axes["comm_scheme"] == "paper":
            del axes["comm_scheme"]
        return content_digest({"kind": "training_strategy", "axes": axes})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingStrategy":
        """Rebuild a strategy from :meth:`to_dict` output.

        Unknown keys raise ``ValueError``; missing keys take their
        defaults, so documents written before an axis existed load with
        paper-faithful behavior.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TrainingStrategy fields: {sorted(unknown)}")
        return cls(**data)


class StrategyRegistry:
    """Named training strategies, looked up case/spelling-insensitively.

    ``registry["SPD-KFAC"]``, ``registry["spd_kfac"]`` and
    ``registry["spd kfac"]`` all resolve to the same preset.  Iteration
    yields canonical display names in registration order.
    """

    def __init__(self) -> None:
        self._strategies: Dict[str, TrainingStrategy] = {}
        self._display: List[str] = []

    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower().replace("_", "-").replace(" ", "-")

    def register(self, strategy: TrainingStrategy, *aliases: str) -> TrainingStrategy:
        """Register ``strategy`` under its name plus any ``aliases``."""
        keys = [self._normalize(label) for label in (strategy.name, *aliases)]
        # Validate every key (collisions with the registry *and* within
        # this call) before mutating, so a failed registration leaves the
        # registry untouched.
        seen = set()
        for label, key in zip((strategy.name, *aliases), keys):
            if key in self._strategies or key in seen:
                raise ValueError(f"strategy name {label!r} already registered")
            seen.add(key)
        for key in keys:
            self._strategies[key] = strategy
        self._display.append(strategy.name)
        return strategy

    def __getitem__(self, name: str) -> TrainingStrategy:
        key = self._normalize(name)
        if key not in self._strategies:
            raise KeyError(
                f"unknown strategy {name!r}; registered: {self.names()}"
            )
        return self._strategies[key]

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._strategies

    def __iter__(self) -> Iterator[str]:
        return iter(self._display)

    def __len__(self) -> int:
        return len(self._display)

    def names(self) -> Tuple[str, ...]:
        """Canonical display names in registration order."""
        return tuple(self._display)

    def items(self) -> Iterator[Tuple[str, TrainingStrategy]]:
        """Yield ``(canonical name, strategy)`` pairs in registration order."""
        for name in self._display:
            yield name, self[name]


#: The paper's six training schemes as presets (Fig. 1 / Fig. 2).
strategy_registry = StrategyRegistry()

strategy_registry.register(
    TrainingStrategy(
        name="SGD",
        second_order=False,
        distributed=False,
        gradient_reduction="none",
        placement="non_dist",
    )
)
strategy_registry.register(
    TrainingStrategy(
        name="S-SGD",
        second_order=False,
        distributed=True,
        gradient_reduction="wfbp",
        placement="non_dist",
    ),
    "ssgd",
)
strategy_registry.register(
    TrainingStrategy(
        name="KFAC",
        second_order=True,
        distributed=False,
        gradient_reduction="none",
        placement="non_dist",
    ),
    "k-fac",
)
strategy_registry.register(
    TrainingStrategy(
        name="D-KFAC",
        factor_fusion="bulk",
        factor_pipelining=False,
        combine_factor_passes=True,
        placement="non_dist",
    ),
    "dkfac",
)
strategy_registry.register(
    TrainingStrategy(
        name="MPD-KFAC",
        factor_fusion="bulk",
        factor_pipelining=False,
        combine_factor_passes=True,
        placement="seq_dist",
    ),
    "mpdkfac",
)
strategy_registry.register(
    TrainingStrategy(
        name="SPD-KFAC",
        factor_fusion="optimal",
        factor_pipelining=True,
        placement="lbp",
    ),
    "spdkfac",
)
