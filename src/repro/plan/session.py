"""The Session facade: ``Session(model, cluster).plan(strategy)``.

A :class:`Session` binds a model to a cluster description and turns
declarative :class:`~repro.plan.strategy.TrainingStrategy` values into
resolved :class:`~repro.plan.plan.Plan` artifacts and simulated
:class:`~repro.core.schedule.IterationResult` timelines::

    from repro import Session

    session = Session("ResNet-50", 64)           # model x cluster
    plan = session.plan("SPD-KFAC")              # resolved, serializable
    result = session.simulate(plan)              # discrete-event simulated

``cluster`` may be ``None`` (the paper's 64-GPU testbed), an ``int``
(the paper's fabric rescaled to that many GPUs), any
:class:`~repro.perf.ClusterPerfProfile`, or a
:class:`~repro.topo.ClusterTopology` — in which case each strategy's
``collective`` axis picks the collective algorithm the profile is
derived with.

An optional :class:`~repro.faults.FaultScenario` makes the session
price iterations under that scenario's straggler perturbation (seeded
at ``scenario.seed``) instead of the noise-free nominal durations; the
default ``scenario=None`` is bit-identical to the pre-fault behaviour.

Plans and results are memoized in module-level LRU caches keyed on
``(model spec, strategy, profile, scenario digest)`` and shared across
Session instances, so sweeps that revisit the same cell (tab3/fig9/
fig13 all price SPD-KFAC on the paper profile) simulate it once, and
scenario-aware sessions never collide with nominal ones.  The cache is
guarded by a lock (concurrent ``plan()``/``simulate()`` from serving
threads is safe), and :func:`set_plan_store` optionally layers a
disk-backed content-addressed :class:`repro.serve.PlanStore` underneath
it so plans and result summaries survive restarts and are shared across
processes.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.core.fusion import plan_bulk
from repro.obs import recorder
from repro.core.pipeline import factor_comm_plan_for, gradient_fusion_plan
from repro.core.schedule import (
    AmortizedIterationResult,
    IterationResult,
    build_graph_from_parts,
    mem_opt_placement,
    phase_results_from_timelines,
    resolve_placement,
    run_phase_iterations,
)
from repro.sim.analysis import FACTOR_REFRESH, REFRESH, interval_weights
from repro.models import get_model_spec
from repro.models.spec import ModelSpec
from repro.perf import (
    ClusterPerfProfile,
    paper_cluster_profile,
    scaled_cluster_profile,
    topology_profile,
)
from repro.plan.plan import Plan, count_tasks
from repro.plan.strategy import TrainingStrategy, strategy_registry
from repro.topo import ClusterTopology
from repro.utils.digest import content_digest

ClusterLike = Union[None, int, ClusterPerfProfile, ClusterTopology]

#: What a simulation returns: a plain single-iteration result, or the
#: cycle-averaged result of a stale-refresh (interval > 1) strategy.
ResultLike = Union[IterationResult, AmortizedIterationResult]

_CACHE_MAXSIZE = 128
_CacheKey = Tuple[ModelSpec, TrainingStrategy, ClusterPerfProfile, Optional[str]]
#: One atomic (plan, result) entry per key: planning and simulation are
#: memoized together so eviction can never leave one without the other.
_CACHE: "OrderedDict[_CacheKey, Tuple[Plan, ResultLike]]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0, "store_hits": 0, "store_misses": 0}
#: Guards _CACHE and _CACHE_STATS: the cache is shared process-wide, and
#: concurrent plan()/simulate() calls (the serving threads) would
#: otherwise race on OrderedDict reordering/eviction mid-iteration.
_CACHE_LOCK = threading.RLock()

#: Optional disk layer underneath the LRU (see :func:`set_plan_store`).
_PLAN_STORE = None

_REC = recorder()


def clear_caches() -> None:
    """Drop all memoized plans and simulation results (in-memory only)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        for counter in _CACHE_STATS:
            _CACHE_STATS[counter] = 0


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the shared plan cache.

    ``store_hits``/``store_misses`` count disk-layer lookups; they stay
    zero until a plan store is installed with :func:`set_plan_store`.
    """
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
            "store_hits": _CACHE_STATS["store_hits"],
            "store_misses": _CACHE_STATS["store_misses"],
            "entries": len(_CACHE),
            "maxsize": _CACHE_MAXSIZE,
        }


def _cache_get(key: _CacheKey):
    with _CACHE_LOCK:
        value = _CACHE.get(key)
        if value is not None:
            _CACHE.move_to_end(key)
        return value


def _cache_put(key: _CacheKey, value: Tuple[Plan, IterationResult]) -> None:
    with _CACHE_LOCK:
        _CACHE[key] = value
        _CACHE.move_to_end(key)
        while len(_CACHE) > _CACHE_MAXSIZE:
            _CACHE.popitem(last=False)


_STAT_METRICS = {
    "hits": "plan.cache.hits",
    "misses": "plan.cache.misses",
    "store_hits": "plan.store.hits",
    "store_misses": "plan.store.misses",
}


def _note(counter: str) -> None:
    with _CACHE_LOCK:
        _CACHE_STATS[counter] += 1
    _REC.count(_STAT_METRICS[counter])


def set_plan_store(store):
    """Install (or clear) the process-wide disk layer under the LRU.

    ``store`` may be a :class:`repro.serve.PlanStore`, a directory path
    (a store is opened there), or ``None`` to detach.  While installed,
    every LRU miss consults the store before planning/simulating, and
    every freshly computed (plan, result) pair is written through — so
    plans survive restarts and are shared across processes pointing at
    the same directory.  Returns the installed store.

    Results loaded from disk are summary playbacks
    (:class:`repro.serve.StoredResult`): bit-identical
    ``iteration_time``/``categories``, but no ``timeline``.
    """
    global _PLAN_STORE
    if store is not None and isinstance(store, (str, os.PathLike)):
        from repro.serve.store import PlanStore

        store = PlanStore(store)
    _PLAN_STORE = store
    return store


def get_plan_store():
    """The installed disk plan store, or ``None``."""
    return _PLAN_STORE


def plan_store_key(
    spec: ModelSpec,
    strategy: TrainingStrategy,
    profile: ClusterPerfProfile,
    scenario_digest: Optional[str] = None,
) -> str:
    """Content digest addressing one (model, strategy, profile, scenario)
    cell in the disk store — the canonical serving cache key."""
    return content_digest(
        {
            "kind": "plan+result",
            "model": spec.digest(),
            "strategy": strategy.digest(),
            "profile": profile.digest(),
            "scenario": scenario_digest,
        }
    )


def _store_load(store, skey: str):
    """Decode one store document into (Plan, StoredResult), or ``None``.

    A document whose *payload* is malformed (the envelope was already
    validated by the store) is quarantined like any other corruption.
    """
    doc = store.get(skey)
    if doc is None:
        return None
    from repro.serve.results import result_from_doc

    try:
        plan = Plan.from_dict(doc["plan"])
        result = result_from_doc(doc["result"])
    except (KeyError, TypeError, ValueError, IndexError, AttributeError):
        store.quarantine(skey)
        return None
    return plan, result


def _store_save(store, skey: str, plan: Plan, result) -> None:
    from repro.serve.results import result_to_doc

    store.put(
        skey,
        {"plan": plan.to_dict(), "result": result_to_doc(result)},
        kind="plan+result",
    )


def resolve_strategy(strategy: Union[str, TrainingStrategy]) -> TrainingStrategy:
    """Accept a registry name or a strategy value."""
    if isinstance(strategy, TrainingStrategy):
        return strategy
    if isinstance(strategy, str):
        return strategy_registry[strategy]
    raise TypeError(
        f"expected a strategy name or TrainingStrategy, got {type(strategy).__name__}"
    )


def resolve_plan_parts(
    spec: ModelSpec, profile: ClusterPerfProfile, strategy: TrainingStrategy
):
    """Resolve a strategy's axes into the builder's planning parts.

    Returns ``(num_ranks, grad_plan, fplan, placement)`` — exactly the
    inputs of :func:`repro.core.schedule.build_graph_from_parts`.
    """
    num_ranks = profile.num_workers if strategy.distributed else 1
    distributed = num_ranks > 1
    kfac = strategy.second_order

    grad_plan = None
    if distributed and strategy.gradient_reduction != "none":
        if strategy.gradient_reduction == "wfbp":
            grad_plan = gradient_fusion_plan(spec, profile)
        else:  # "bulk": one all-reduce launched after the backward pass
            grad_plan = plan_bulk(len(spec.layers))

    fplan = None
    if kfac and distributed:
        fplan = factor_comm_plan_for(
            spec,
            profile,
            fusion=strategy.factor_fusion,
            pipelined=strategy.factor_pipelining,
            combine_passes=strategy.combine_factor_passes,
            # The optimal G-pass planner shares the channel with the WFBP
            # buckets by default; pass the actual plan when it differs.
            grad_plan=None if strategy.gradient_reduction == "wfbp" else grad_plan,
        )

    placement = None
    if kfac and strategy.include_solve:
        if strategy.comm_scheme == "mem_opt":
            # MEM_OPT pins both of a layer's inverses (and its
            # preconditioning) on one owner rank.
            placement = mem_opt_placement(strategy.placement, spec, profile, num_ranks)
        else:
            placement = resolve_placement(strategy.placement, spec, profile, num_ranks)

    return num_ranks, grad_plan, fplan, placement


def wire_axis_kwargs(strategy: TrainingStrategy) -> Dict[str, object]:
    """The strategy's wire axes (+ comm scheme) as
    :func:`build_graph_from_parts` kwargs."""
    return {
        "grad_dtype": strategy.grad_dtype,
        "factor_dtype": strategy.factor_dtype,
        "inverse_dtype": strategy.inverse_dtype,
        "grad_compression": strategy.grad_compression,
        "comm_scheme": strategy.comm_scheme,
    }


def build_phase_graphs(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    strategy: TrainingStrategy,
    *,
    num_ranks: int,
    grad_plan,
    fplan,
    placement,
):
    """One task graph per distinct iteration shape of the refresh cycle.

    Non-stale strategies (both intervals 1) produce a single
    ``{"refresh": graph}`` entry — built through exactly the legacy
    arguments, so their schedule is bit-identical to the
    every-iteration path.  Stale strategies add the factor-only-refresh
    and/or steady-state shapes, which drop the factor and inverse stages
    respectively.
    """
    graphs = {}
    for phase, _ in interval_weights(
        strategy.factor_update_interval, strategy.inverse_update_interval
    ):
        with_factors = phase in (REFRESH, FACTOR_REFRESH)
        with_inverses = phase == REFRESH
        # MEM_OPT preconditions on the owner rank in *every* shape, so
        # the placement travels into the stale phases too.
        keep_placement = with_inverses or strategy.comm_scheme == "mem_opt"
        graphs[phase] = build_graph_from_parts(
            spec,
            profile,
            num_ranks=num_ranks,
            kfac=strategy.second_order,
            fplan=fplan if with_factors else None,
            grad_plan=grad_plan,
            placement=placement if keep_placement else None,
            include_solve=strategy.include_solve,
            with_factors=with_factors,
            with_inverses=with_inverses,
            **wire_axis_kwargs(strategy),
        )
    return graphs


def build_strategy_graph(
    spec: ModelSpec, profile: ClusterPerfProfile, strategy: Union[str, TrainingStrategy]
):
    """Uncached strategy -> task graph (the Session's building block).

    For stale-refresh strategies this is the *refresh* iteration's graph
    (the most complete shape); :func:`build_phase_graphs` exposes all
    shapes.
    """
    strategy = resolve_strategy(strategy)
    num_ranks, grad_plan, fplan, placement = resolve_plan_parts(spec, profile, strategy)
    return build_graph_from_parts(
        spec,
        profile,
        num_ranks=num_ranks,
        kfac=strategy.second_order,
        fplan=fplan,
        grad_plan=grad_plan,
        placement=placement,
        include_solve=strategy.include_solve,
        **wire_axis_kwargs(strategy),
    )


class Session:
    """Planning facade for one model on one cluster.

    Examples
    --------
    >>> session = Session("ResNet-50", 4)
    >>> plan = session.plan("SPD-KFAC")
    >>> result = session.simulate(plan)
    >>> plan.predicted_makespan == result.iteration_time
    True
    """

    def __init__(
        self,
        model: Union[str, ModelSpec],
        cluster: ClusterLike = None,
        scenario=None,
    ):
        self._spec = model if isinstance(model, ModelSpec) else get_model_spec(model)
        self._topology: Optional[ClusterTopology] = None
        self._profile: Optional[ClusterPerfProfile] = None
        self._topology_profiles: Dict[str, ClusterPerfProfile] = {}
        self._scenario = None
        if scenario is not None:
            # Local import: repro.faults builds on repro.plan (elastic
            # replanning reuses Session), so plan cannot import it at
            # module scope.
            from repro.faults.scenario import FaultScenario

            if not isinstance(scenario, FaultScenario):
                raise TypeError(
                    f"scenario must be a FaultScenario, got {type(scenario).__name__}"
                )
            self._scenario = scenario
        if cluster is None:
            self._profile = paper_cluster_profile()
        elif isinstance(cluster, bool):
            raise TypeError("cluster must not be a bool")
        elif isinstance(cluster, int):
            self._profile = scaled_cluster_profile(cluster)
        elif isinstance(cluster, ClusterPerfProfile):
            self._profile = cluster
        elif isinstance(cluster, ClusterTopology):
            self._topology = cluster
        else:
            raise TypeError(
                "cluster must be None, a GPU count, a ClusterPerfProfile, or a "
                f"ClusterTopology; got {type(cluster).__name__}"
            )

    @property
    def spec(self) -> ModelSpec:
        return self._spec

    @property
    def model(self) -> str:
        return self._spec.name

    @property
    def topology(self) -> Optional[ClusterTopology]:
        return self._topology

    @property
    def scenario(self):
        """The fault scenario this session prices under (None = nominal)."""
        return self._scenario

    def _scenario_digest(self) -> Optional[str]:
        return None if self._scenario is None else self._scenario.digest()

    def _run_phases(self, graphs, strategy: TrainingStrategy) -> ResultLike:
        """Price phase graphs nominally or under this session's scenario."""
        if self._scenario is None:
            return run_phase_iterations(
                graphs,
                strategy.name,
                self._spec.name,
                strategy.factor_update_interval,
                strategy.inverse_update_interval,
            )
        from repro.faults.perturb import run_faulted_phase_iterations

        return run_faulted_phase_iterations(
            graphs,
            strategy.name,
            self._spec.name,
            strategy.factor_update_interval,
            strategy.inverse_update_interval,
            scenario=self._scenario,
        )

    @property
    def num_workers(self) -> int:
        """The cluster size this session plans for."""
        if self._topology is not None:
            return self._topology.world_size
        assert self._profile is not None
        return self._profile.num_workers

    def profile_for(self, strategy: Union[str, TrainingStrategy]) -> ClusterPerfProfile:
        """The cost profile a strategy runs under in this session.

        For topology-backed sessions the strategy's ``collective`` axis
        selects the collective algorithm; profile-backed sessions ignore
        it (the profile already encodes its collectives).
        """
        strategy = resolve_strategy(strategy)
        if self._topology is None:
            assert self._profile is not None
            return self._profile
        profile = self._topology_profiles.get(strategy.collective)
        if profile is None:
            profile = topology_profile(self._topology, strategy.collective)
            self._topology_profiles[strategy.collective] = profile
        return profile

    def _plan_and_result(self, strategy: TrainingStrategy) -> Tuple[Plan, ResultLike]:
        # One attribute check when instrumentation is off; spans carry the
        # (model, strategy, workers) identity so traces of sweeps are
        # self-describing.
        if _REC.enabled:
            with _REC.span(
                "plan.session.plan",
                model=self._spec.name,
                strategy=strategy.name,
                workers=self.num_workers,
            ) as sp:
                plan, result = self._plan_and_result_impl(strategy)
                sp.set(ranks=plan.num_ranks)
                return plan, result
        return self._plan_and_result_impl(strategy)

    def _plan_and_result_impl(
        self, strategy: TrainingStrategy
    ) -> Tuple[Plan, ResultLike]:
        profile = self.profile_for(strategy)
        key = (self._spec, strategy, profile, self._scenario_digest())
        cached = _cache_get(key)
        if cached is not None:
            _note("hits")
            return cached
        _note("misses")

        store = _PLAN_STORE
        skey = None
        if store is not None:
            skey = plan_store_key(
                self._spec, strategy, profile, self._scenario_digest()
            )
            loaded = _store_load(store, skey)
            if loaded is not None:
                _note("store_hits")
                _cache_put(key, loaded)
                return loaded
            _note("store_misses")

        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            self._spec, profile, strategy
        )
        graphs = build_phase_graphs(
            self._spec,
            profile,
            strategy,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
        )
        result = self._run_phases(graphs, strategy)
        plan = Plan(
            strategy=strategy,
            model=self._spec.name,
            num_ranks=num_ranks,
            profile=profile,
            grad_plan=grad_plan,
            factor_plan=fplan,
            placement=placement,
            predicted_makespan=result.iteration_time,
            predicted_breakdown=tuple(result.categories().items()),
            task_counts=count_tasks(graphs[REFRESH]),
        )
        _cache_put(key, (plan, result))
        if store is not None and skey is not None:
            _store_save(store, skey, plan, result)
        return plan, result

    def plan(self, strategy: Union[str, TrainingStrategy]) -> Plan:
        """Resolve (and memoize) the plan for ``strategy`` on this cluster."""
        return self._plan_and_result(resolve_strategy(strategy))[0]

    def simulate(
        self, plan_or_strategy: Union[str, TrainingStrategy, Plan]
    ) -> ResultLike:
        """Simulate one iteration of a plan (or of a strategy's plan).

        Stale-refresh strategies (factor/inverse update intervals > 1)
        return an :class:`~repro.core.schedule.AmortizedIterationResult`
        whose ``iteration_time`` is the exact cycle average; everything
        else returns the usual
        :class:`~repro.core.schedule.IterationResult`.
        """
        if isinstance(plan_or_strategy, Plan):
            plan = plan_or_strategy
            if plan.model != self._spec.name:
                raise ValueError(
                    f"plan is for model {plan.model!r}; this session holds "
                    f"{self._spec.name!r}"
                )
            if plan.profile != self.profile_for(plan.strategy):
                raise ValueError(
                    f"plan was resolved for a {plan.num_ranks}-worker cluster "
                    "whose cost profile differs from this session's; create a "
                    "Session for the plan's cluster (e.g. "
                    f"Session({self._spec.name!r}, {plan.num_ranks})) or "
                    "simulate plan.build_phase_graphs() directly"
                )
            key = (self._spec, plan.strategy, plan.profile, self._scenario_digest())
            cached = _cache_get(key)
            # The cached result only stands in for this plan if the plan
            # *values* match — a hand-edited or replaced Plan with the
            # same (strategy, profile) must re-simulate its own parts.
            if cached is not None and cached[0] == plan:
                _note("hits")
                return cached[1]
            _note("misses")
            store = _PLAN_STORE
            if store is not None:
                skey = plan_store_key(
                    self._spec, plan.strategy, plan.profile, self._scenario_digest()
                )
                loaded = _store_load(store, skey)
                if loaded is not None and loaded[0] == plan:
                    _note("store_hits")
                    _cache_put(key, loaded)
                    return loaded[1]
                _note("store_misses")
            if _REC.enabled:
                with _REC.span(
                    "plan.session.simulate",
                    model=self._spec.name,
                    strategy=plan.strategy.name,
                    ranks=plan.num_ranks,
                ):
                    return self._simulate_plan(plan)
            return self._simulate_plan(plan)
        return self._plan_and_result(resolve_strategy(plan_or_strategy))[1]

    def _simulate_plan(self, plan: Plan) -> ResultLike:
        graphs = build_phase_graphs(
            self._spec,
            plan.profile,
            plan.strategy,
            num_ranks=plan.num_ranks,
            grad_plan=plan.grad_plan,
            fplan=plan.factor_plan,
            placement=plan.placement,
        )
        result = self._run_phases(graphs, plan.strategy)
        # Not cached under the strategy key: only plans this Session
        # resolved itself are canonical for (strategy, profile), and a
        # foreign plan's parts may differ from what resolution gives.
        return result

    def simulate_many(
        self,
        strategies,
        *,
        batch_sizes=None,
    ) -> List[ResultLike]:
        """Simulate many strategies, batching structurally-identical graphs.

        The one-shot multi-plan pricing path: all cache/store misses have
        their phase graphs built up front and priced through
        :func:`repro.sim.simulate_plans`, which stacks graphs with equal
        :func:`~repro.sim.graph_shape_digest` (same task-graph shape,
        different durations — e.g. the dtype/compression variants of one
        fusion plan) into single vectorized scheduling passes.  Results,
        cache entries, and store writes are bit-identical to calling
        :meth:`simulate` per strategy; only the wall-clock differs.

        ``batch_sizes``, when given a list, receives the size of every
        scheduling pass issued (the autotuner's telemetry hook).
        Scenario-bound sessions fall back to per-strategy simulation —
        fault perturbation draws per-graph random factors that the
        batched path does not replicate.
        """
        resolved = [resolve_strategy(s) for s in strategies]
        if self._scenario is not None:
            return [self.simulate(s) for s in resolved]
        results: List[Optional[ResultLike]] = [None] * len(resolved)
        pending: "OrderedDict[_CacheKey, List[int]]" = OrderedDict()
        meta: Dict[_CacheKey, Tuple[TrainingStrategy, ClusterPerfProfile, Optional[str]]] = {}
        for idx, strategy in enumerate(resolved):
            profile = self.profile_for(strategy)
            key = (self._spec, strategy, profile, None)
            if key in pending:  # duplicate within this batch: plan once
                pending[key].append(idx)
                continue
            cached = _cache_get(key)
            if cached is not None:
                _note("hits")
                results[idx] = cached[1]
                continue
            _note("misses")
            store = _PLAN_STORE
            skey = None
            if store is not None:
                skey = plan_store_key(self._spec, strategy, profile, None)
                loaded = _store_load(store, skey)
                if loaded is not None:
                    _note("store_hits")
                    _cache_put(key, loaded)
                    results[idx] = loaded[1]
                    continue
                _note("store_misses")
            pending[key] = [idx]
            meta[key] = (strategy, profile, skey)
        if pending:
            self._simulate_pending(pending, meta, results, batch_sizes)
        return results  # type: ignore[return-value]

    def _simulate_pending(self, pending, meta, results, batch_sizes) -> None:
        """Plan + batch-price the cache-missing strategies of simulate_many."""
        from repro.sim import simulate_plans

        built = {}
        flat_graphs = []
        tags = []
        for key in pending:
            strategy, profile, _ = meta[key]
            parts = resolve_plan_parts(self._spec, profile, strategy)
            num_ranks, grad_plan, fplan, placement = parts
            graphs = build_phase_graphs(
                self._spec,
                profile,
                strategy,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
            )
            built[key] = (parts, graphs)
            for phase, graph in graphs.items():
                flat_graphs.append(graph)
                tags.append((key, phase))
        timelines = simulate_plans(flat_graphs, batch_sizes=batch_sizes)
        by_key: Dict[object, Dict[str, object]] = {}
        for (key, phase), timeline in zip(tags, timelines):
            by_key.setdefault(key, {})[phase] = timeline
        store = _PLAN_STORE
        for key, indices in pending.items():
            strategy, profile, skey = meta[key]
            (num_ranks, grad_plan, fplan, placement), graphs = built[key]
            result = phase_results_from_timelines(
                by_key[key],
                strategy.name,
                self._spec.name,
                strategy.factor_update_interval,
                strategy.inverse_update_interval,
            )
            plan = Plan(
                strategy=strategy,
                model=self._spec.name,
                num_ranks=num_ranks,
                profile=profile,
                grad_plan=grad_plan,
                factor_plan=fplan,
                placement=placement,
                predicted_makespan=result.iteration_time,
                predicted_breakdown=tuple(result.categories().items()),
                task_counts=count_tasks(graphs[REFRESH]),
            )
            _cache_put(key, (plan, result))
            if store is not None and skey is not None:
                _store_save(store, skey, plan, result)
            for idx in indices:
                results[idx] = result

    def autotune(self, **options):
        """Search the full planner axis grid on this session's cluster.

        Convenience for :func:`repro.autotune.autotune` — options are
        forwarded verbatim; returns its
        :class:`~repro.autotune.AutotuneReport`.
        """
        from repro.autotune import autotune  # local: repro.autotune builds on plan

        return autotune(self, **options)

    def compare(
        self, *strategies: Union[str, TrainingStrategy]
    ) -> Dict[str, IterationResult]:
        """Simulate several strategies; returns {strategy name: result}.

        Names must be unique — ``.but()`` preserves the base name, so
        rename derived variants (``spd.but(name="SPD-eager", ...)``)
        before comparing them against their base.
        """
        results: Dict[str, IterationResult] = {}
        for strategy in strategies:
            resolved = resolve_strategy(strategy)
            if resolved.name in results:
                raise ValueError(
                    f"duplicate strategy name {resolved.name!r} in compare(); "
                    "give variants distinct names with .but(name=...)"
                )
            results[resolved.name] = self.simulate(resolved)
        return results

    def __repr__(self) -> str:
        if self._topology is not None:
            cluster = f"topology={self._topology.name!r}"
        else:
            cluster = f"num_workers={self._profile.num_workers}"
        scenario = ""
        if self._scenario is not None:
            scenario = f", scenario={self._scenario.name!r}"
        return f"Session(model={self._spec.name!r}, {cluster}{scenario})"
