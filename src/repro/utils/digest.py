"""Canonical content digests: one hashing convention for the whole stack.

The plan-serving store, the Session cache, and every ``digest()`` method
on the planning value objects (:class:`~repro.plan.TrainingStrategy`,
:class:`~repro.models.spec.ModelSpec`,
:class:`~repro.perf.ClusterPerfProfile`,
:class:`~repro.faults.FaultScenario`) need keys that are stable across
processes, machines, and Python versions.  The convention:

* serialize the payload as **canonical JSON** — sorted keys, compact
  separators, no NaN/Infinity.  Python's ``json`` renders floats via
  ``repr`` (shortest round-tripping form, stable since CPython 3.1) and
  ints without locale effects, so equal values always produce equal
  bytes;
* hash the UTF-8 bytes with **sha256** and keep the first 16 hex
  characters (64 bits — ample for cache keys, short enough to read in
  logs and directory listings).

``content_digest`` is the one entry point; everything else in the
repository delegates to it so digests can never drift between layers.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "content_digest", "DIGEST_LENGTH"]

#: Hex characters kept from the sha256 digest (64 bits).
DIGEST_LENGTH = 16


def canonical_json(payload: object) -> str:
    """Serialize ``payload`` as canonical (sorted, compact) JSON.

    Only JSON-native types are accepted (``dict``/``list``/``tuple``/
    ``str``/``int``/``float``/``bool``/``None``); anything else raises
    ``TypeError`` rather than hashing an unstable ``repr``.  NaN and
    infinities are rejected: their JSON spellings are non-standard and
    their semantics break key equality.

    Examples
    --------
    >>> canonical_json({"b": 1, "a": [1.5, None]})
    '{"a":[1.5,null],"b":1}'
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_digest(payload: object, *, length: int = DIGEST_LENGTH) -> str:
    """Stable hex digest of ``payload``'s canonical JSON form.

    Examples
    --------
    >>> content_digest({"model": "ResNet-50", "gpus": 64})
    '63cbfbb4c5bbcf66'
    >>> content_digest({"gpus": 64, "model": "ResNet-50"})  # order-insensitive
    '63cbfbb4c5bbcf66'
    """
    if not 1 <= length <= 64:
        raise ValueError(f"digest length must be in [1, 64], got {length}")
    data = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(data).hexdigest()[:length]
