"""Seeded random number generation helpers.

Every stochastic component in the library takes an explicit
``numpy.random.Generator`` (or a seed) so that experiments are exactly
reproducible.  These helpers centralise construction so that tests and
examples never touch the global NumPy RNG state.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged, which lets APIs
    accept either form without double-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used to give every simulated worker its own stream (mirroring how each
    GPU samples a different mini-batch) while keeping the whole run
    reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
