"""Shared utilities: validation helpers, RNG management, formatting."""

from repro.utils.deprecation import ReproDeprecationWarning, warn_deprecated
from repro.utils.digest import canonical_json, content_digest
from repro.utils.format import human_bytes, human_count, human_time
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.stats import percentile
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_square,
    check_symmetric,
)

__all__ = [
    "ReproDeprecationWarning",
    "warn_deprecated",
    "canonical_json",
    "content_digest",
    "human_bytes",
    "human_count",
    "human_time",
    "new_rng",
    "percentile",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_square",
    "check_symmetric",
]
