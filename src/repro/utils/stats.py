"""Shared order statistics.

One canonical :func:`percentile` for every subsystem that summarizes
latency samples — the server's ``/stats`` endpoint and the load-test
report both import it, so their quantile semantics (nearest-rank over
the sorted samples) can never drift apart.  Historically the load
harness carried its own guard-less copy, which raised a bare
``IndexError`` on an empty sample list (a zero-successful-op load test
hit it); the validation now lives in exactly one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank.

    Raises ``ValueError`` on an empty sample list or a quantile outside
    ``[0, 1]`` — callers that want a soft answer (the load-test report
    degrades to ``None`` fields) must guard for emptiness themselves.

    Examples
    --------
    >>> percentile([0.1, 0.2, 0.3], 0.5)
    0.2
    >>> percentile([0.1], 0.99)
    0.1
    >>> percentile([0.3, 0.1, 0.2], 0.0)
    0.1
    >>> percentile([0.3, 0.1, 0.2], 1.0)
    0.3
    """
    if not samples:
        raise ValueError("percentile of no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]
