"""Argument validation helpers used across the library.

All helpers raise ``ValueError`` with a message naming the offending
argument, so call sites stay one-liners.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value`` > 0."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``value`` in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_square(name: str, matrix: np.ndarray) -> np.ndarray:
    """Require a square 2-D array."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {matrix.shape}")
    return matrix


def check_symmetric(name: str, matrix: np.ndarray, atol: float = 1e-8) -> np.ndarray:
    """Require a symmetric square 2-D array (within ``atol``)."""
    check_square(name, matrix)
    if not np.allclose(matrix, matrix.T, atol=atol):
        raise ValueError(f"{name} must be symmetric (atol={atol})")
    return matrix
