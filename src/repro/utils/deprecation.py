"""Deprecation plumbing for the public API.

:class:`ReproDeprecationWarning` subclasses :class:`DeprecationWarning`
so standard filters apply, while letting the test suite (and CI) turn
*repro's own* deprecations into hard errors without also erroring on
deprecations raised by third-party libraries.
"""

from __future__ import annotations

import warnings


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was called."""


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation message for ``old``."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        ReproDeprecationWarning,
        stacklevel=stacklevel,
    )
