"""Human-readable formatting for sizes, counts, and durations."""

from __future__ import annotations


def human_bytes(num_bytes: float) -> str:
    """Format a byte count, e.g. ``human_bytes(2**21) == '2.0 MiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_count(count: float) -> str:
    """Format an element count, e.g. ``human_count(62_300_000) == '62.3M'``."""
    value = float(count)
    for suffix, scale in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(value) >= scale:
            return f"{value / scale:.1f}{suffix}"
    return f"{value:.0f}"


def human_time(seconds: float) -> str:
    """Format a duration: microseconds up to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.3f}s"
    return f"{seconds / 60.0:.1f}min"
