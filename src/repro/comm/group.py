"""Thread-based collective group with Horovod-like semantics."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.perf.models import WIRE_ELEMENT_BYTES


class CollectiveMismatchError(RuntimeError):
    """Ranks called different collectives (or with mismatched shapes)."""


class CollectiveAbortedError(RuntimeError):
    """A peer rank failed; this collective cannot complete."""


@dataclass
class TrafficCounter:
    """Accumulates communicated element and byte counts per collective type.

    Element counts follow the standard accounting used by the paper's
    models: an all-reduce or broadcast of an ``m``-element buffer counts
    ``m`` (the models' ``m`` in Eqs. 14 and 27), regardless of internal
    algorithm.  Byte counts are dtype-aware (an fp64 all-reduce weighs
    twice an fp32 one of the same shape); when a caller does not supply
    them they default to the paper's fp32 wire format (4 bytes/element).

    Counts are ints for exact per-call accounting, but the planner-side
    counters (:func:`repro.autotune.parts_traffic`) may record
    *fractional* amortized contributions — a factor all-reduce refreshed
    every ``K`` iterations weighs ``1/K`` of its size per iteration — so
    ``record`` preserves whatever numeric type the caller passes.
    """

    elements: Dict[str, float] = field(default_factory=dict)  #: int unless amortized
    bytes: Dict[str, float] = field(default_factory=dict)  #: int unless amortized
    calls: Dict[str, int] = field(default_factory=dict)

    def record(
        self, op: str, num_elements: float, num_bytes: Optional[float] = None
    ) -> None:
        if num_bytes is None:
            num_bytes = WIRE_ELEMENT_BYTES * num_elements
        self.elements[op] = self.elements.get(op, 0) + num_elements
        self.bytes[op] = self.bytes.get(op, 0) + num_bytes
        self.calls[op] = self.calls.get(op, 0) + 1

    def total_elements(self) -> float:
        return sum(self.elements.values())

    def total_bytes(self) -> float:
        return sum(self.bytes.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (used by autotune reports)."""
        return {
            "elements": dict(self.elements),
            "bytes": dict(self.bytes),
            "calls": dict(self.calls),
            "total_elements": self.total_elements(),
            "total_bytes": self.total_bytes(),
        }


class CollectiveGroup:
    """Shared state for ``world_size`` communicating ranks.

    Every collective performs two barrier phases: (1) all ranks deposit
    their operation descriptor + buffer; rank 0 validates the descriptors
    match and computes the reduction in deterministic rank order;
    (2) all ranks read the shared result.  Deterministic order makes the
    floating-point result identical on every rank.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.traffic = TrafficCounter()
        self._barrier = threading.Barrier(world_size)
        self._lock = threading.Lock()
        self._slots: List[Optional[np.ndarray]] = [None] * world_size
        self._descriptors: List[Optional[tuple]] = [None] * world_size
        self._result: Optional[np.ndarray] = None
        self._error: Optional[Exception] = None

    def communicator(self, rank: int) -> "Communicator":
        """Handle for one rank."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside 0..{self.world_size - 1}")
        return Communicator(rank, self)

    def communicators(self) -> List["Communicator"]:
        """Handles for all ranks, rank order."""
        return [self.communicator(r) for r in range(self.world_size)]

    # -- internal machinery --------------------------------------------------

    def _wait(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError:
            raise CollectiveAbortedError(
                "a peer rank failed during a collective"
            ) from None

    def abort(self) -> None:
        """Break the barrier so peers do not hang after a rank failure."""
        self._barrier.abort()

    def _execute(
        self,
        rank: int,
        descriptor: tuple,
        buffer: Optional[np.ndarray],
        reducer: Callable[[Sequence[np.ndarray]], np.ndarray],
        traffic_elements: int,
        traffic_bytes: int = -1,
    ) -> np.ndarray:
        self._slots[rank] = buffer
        self._descriptors[rank] = descriptor
        self._wait()
        if rank == 0:
            try:
                distinct = {d for d in self._descriptors}
                if len(distinct) != 1:
                    raise CollectiveMismatchError(
                        f"ranks disagree on collective: {sorted(map(str, distinct))}"
                    )
                self._result = reducer([s for s in self._slots])  # type: ignore[arg-type]
                recorded = traffic_elements if traffic_elements >= 0 else self._result.size
                recorded_bytes = traffic_bytes if traffic_bytes >= 0 else self._result.nbytes
                self.traffic.record(descriptor[0], recorded, recorded_bytes)
                self._error = None
            except Exception as exc:  # propagate to every rank, not just 0
                self._error = exc
                self._result = None
        self._wait()
        error = self._error
        result = self._result
        self._wait()  # all ranks read before slots are reused
        if error is not None:
            raise error
        assert result is not None
        return result.copy()

    def barrier_wait(self) -> None:
        """Plain barrier exposed to ranks."""
        self._wait()


class Communicator:
    """One rank's endpoint into a :class:`CollectiveGroup`."""

    def __init__(self, rank: int, group: CollectiveGroup):
        self.rank = rank
        self.group = group

    @property
    def world_size(self) -> int:
        return self.group.world_size

    def allreduce(self, array: np.ndarray, op: str = "mean") -> np.ndarray:
        """All-reduce ``array``; every rank receives the identical result."""
        if op not in ("mean", "sum"):
            raise ValueError(f"op must be 'mean' or 'sum', got {op!r}")
        array = np.asarray(array)
        descriptor = ("allreduce", op, array.shape, str(array.dtype))

        def reducer(slots: Sequence[np.ndarray]) -> np.ndarray:
            total = slots[0].astype(np.float64, copy=True)
            for other in slots[1:]:
                total += other
            if op == "mean":
                total /= len(slots)
            return total

        return self.group._execute(
            self.rank, descriptor, array, reducer, array.size, array.nbytes
        )

    def broadcast(self, array: Optional[np.ndarray], root: int) -> np.ndarray:
        """Broadcast ``array`` from ``root``; non-root inputs may be None."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"root {root} outside 0..{self.world_size - 1}")
        buffer = np.asarray(array) if self.rank == root and array is not None else None
        if self.rank == root and buffer is None:
            raise ValueError("root rank must supply an array to broadcast")
        descriptor = ("broadcast", root)

        def reducer(slots: Sequence[np.ndarray]) -> np.ndarray:
            chosen = slots[root]
            if chosen is None:
                raise CollectiveMismatchError(f"broadcast root {root} supplied no buffer")
            return np.asarray(chosen)

        return self.group._execute(self.rank, descriptor, buffer, reducer, -1)

    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        """Gather every rank's equally-shaped array; result indexed by rank."""
        array = np.asarray(array)
        descriptor = ("allgather", array.shape, str(array.dtype))

        def reducer(slots: Sequence[np.ndarray]) -> np.ndarray:
            return np.stack([np.asarray(s) for s in slots])

        stacked = self.group._execute(
            self.rank, descriptor, array, reducer, array.size, array.nbytes
        )
        return [stacked[r] for r in range(self.world_size)]

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.group.barrier_wait()


def run_spmd(world_size: int, fn: Callable[[Communicator], object]) -> List[object]:
    """Run ``fn(comm)`` on ``world_size`` ranks (threads); return results by rank.

    If any rank raises, the group barrier is aborted so peers unblock, and
    the first failure (by rank order) is re-raised in the caller.
    """
    group = CollectiveGroup(world_size)
    results: List[object] = [None] * world_size
    errors: List[Optional[Exception]] = [None] * world_size

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(group.communicator(rank))
        except Exception as exc:  # noqa: BLE001 - re-raised in caller
            errors[rank] = exc
            group.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(world_size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for err in errors:
        if err is not None and not isinstance(err, CollectiveAbortedError):
            raise err
    for err in errors:
        if err is not None:
            raise err
    return results
