"""Wire-format math: dtypes, top-k compression, and byte accounting.

The paper fixes the wire format at fp32 and sends every gradient and
Kronecker factor at full precision.  Real deployments trade accuracy
for time with three knobs this module prices:

* **reduced-precision collectives** — fp16/bf16 payloads halve the
  bytes (and hence the bandwidth term of Eq. 14) of an all-reduce or
  broadcast;
* **top-k gradient compression** — only a ``ratio`` fraction of
  gradient values is communicated, each accompanied by an int32 index;
* **staleness** (priced elsewhere) — factors/inverses refreshed every
  ``K`` iterations amortize their traffic by ``1/K``.

Everything here is pure integer/float arithmetic shared by the
schedule builder (collective durations), the autotuner (traffic bytes
and lower bounds), and the runtime's :class:`~repro.comm.TrafficCounter`
— one source of truth so simulated time and counted bytes can never
disagree about what went on the wire.

Examples
--------
>>> from repro.comm import wire_bytes, compressed_elements
>>> wire_bytes(1000)                      # paper default: fp32, no compression
4000
>>> wire_bytes(1000, dtype="fp16")        # half-precision payload
2000
>>> compressed_elements(1000, 0.1)        # top-k keeps 10% of the values
100
>>> wire_bytes(1000, dtype="fp16", compression=0.1)  # 100 values + 100 indices
600
"""

from __future__ import annotations

import math
from typing import Tuple

#: Supported wire dtypes and their payload bytes per element.  ``fp32``
#: is the paper's format; ``fp16`` and ``bf16`` halve the payload (they
#: differ in numerics, not in bytes — the cost model treats them alike).
WIRE_DTYPES = {"fp32": 4, "fp16": 2, "bf16": 2}

#: Bytes per transmitted index of a top-k compressed gradient (int32).
TOPK_INDEX_BYTES = 4


def dtype_bytes(dtype: str) -> int:
    """Payload bytes per element of a wire dtype.

    Parameters
    ----------
    dtype : str
        One of ``"fp32"``, ``"fp16"``, ``"bf16"``.

    Returns
    -------
    int
        Bytes per element on the wire.

    Examples
    --------
    >>> dtype_bytes("fp32"), dtype_bytes("bf16")
    (4, 2)
    """
    if dtype not in WIRE_DTYPES:
        raise ValueError(f"unknown wire dtype {dtype!r}; options: {tuple(WIRE_DTYPES)}")
    return WIRE_DTYPES[dtype]


def compressed_elements(num_elements: int, compression: float) -> int:
    """Values kept by top-k compression of an ``num_elements`` buffer.

    Parameters
    ----------
    num_elements : int
        Uncompressed element count.
    compression : float
        Kept fraction in ``(0, 1]``; ``1.0`` disables compression.

    Returns
    -------
    int
        ``ceil(compression * num_elements)``, at least 1 for a non-empty
        buffer (top-k never sends an empty message), and exactly
        ``num_elements`` when ``compression == 1.0``.

    Examples
    --------
    >>> compressed_elements(1000, 1.0)
    1000
    >>> compressed_elements(1000, 0.01)
    10
    >>> compressed_elements(3, 0.01)
    1
    """
    if not 0.0 < compression <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {compression}")
    if num_elements < 0:
        raise ValueError(f"num_elements must be >= 0, got {num_elements}")
    if compression == 1.0 or num_elements == 0:
        return int(num_elements)
    return max(1, math.ceil(compression * num_elements))


def wire_payload(num_elements: int, compression: float = 1.0) -> Tuple[int, int]:
    """Split a (possibly compressed) buffer into (values, indices) counts.

    Returns
    -------
    tuple of int
        ``(kept values, transmitted indices)`` — indices are 0 when no
        compression is applied (dense buffers need no coordinates).
    """
    kept = compressed_elements(num_elements, compression)
    indices = kept if compression < 1.0 else 0
    return kept, indices


def wire_bytes(num_elements: int, dtype: str = "fp32", compression: float = 1.0) -> int:
    """Bytes a collective of ``num_elements`` puts on the wire.

    Parameters
    ----------
    num_elements : int
        Logical (uncompressed) element count of the buffer.
    dtype : str
        Wire dtype of the payload values.
    compression : float
        Top-k kept fraction in ``(0, 1]``; values below 1 add an int32
        index per kept value.

    Returns
    -------
    int
        ``kept * dtype_bytes + indices * 4``.

    Examples
    --------
    >>> wire_bytes(1000)
    4000
    >>> wire_bytes(1000, "bf16")
    2000
    >>> wire_bytes(1000, "fp32", 0.25)   # 250 values + 250 indices
    2000
    """
    kept, indices = wire_payload(num_elements, compression)
    return kept * dtype_bytes(dtype) + indices * TOPK_INDEX_BYTES


def fp32_equivalent_elements(
    num_elements: int, dtype: str = "fp32", compression: float = 1.0
):
    """The fp32-element count whose wire bytes equal this transfer's.

    The calibrated cost models (Eq. 14/27 and the topology-derived
    collectives) price fp32 elements; reduced-precision or compressed
    transfers are priced by converting their wire bytes back into
    "equivalent fp32 elements".  The default axes return
    ``num_elements`` unchanged (``int`` in, ``int`` out) so paper-mode
    schedules are bit-identical.

    Examples
    --------
    >>> fp32_equivalent_elements(1000)
    1000
    >>> fp32_equivalent_elements(1000, "fp16")
    500.0
    """
    if dtype == "fp32" and compression == 1.0:
        return num_elements
    return wire_bytes(num_elements, dtype, compression) / WIRE_DTYPES["fp32"]
