"""Symmetric-matrix packing.

Kronecker factors and their inverses are symmetric, so the paper sends
only the upper triangle including the diagonal — ``d(d+1)/2`` elements
instead of ``d^2`` (Section V-B).  These helpers implement that wire
format.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square


def pack_symmetric(matrix: np.ndarray) -> np.ndarray:
    """Pack a symmetric ``d x d`` matrix into its upper triangle (1-D).

    Only the upper triangle is read; the caller guarantees symmetry.
    """
    check_square("matrix", matrix)
    d = matrix.shape[0]
    iu = np.triu_indices(d)
    return np.ascontiguousarray(matrix[iu])


def unpack_symmetric(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_symmetric`: rebuild the full symmetric matrix."""
    expected = d * (d + 1) // 2
    if packed.ndim != 1 or packed.size != expected:
        raise ValueError(f"packed size {packed.shape} != ({expected},) for d={d}")
    out = np.zeros((d, d), dtype=packed.dtype)
    iu = np.triu_indices(d)
    out[iu] = packed
    strict = np.triu_indices(d, k=1)
    out.T[strict] = out[strict]
    return out
