"""Symmetric-matrix packing.

Kronecker factors and their inverses are symmetric, so the paper sends
only the upper triangle including the diagonal — ``d(d+1)/2`` elements
instead of ``d^2`` (Section V-B).  These helpers implement that wire
format.

The index patterns are pure functions of the matrix side ``d`` and a
training run packs the same handful of dimensions thousands of times, so
the flattened upper/lower-triangle indices are cached per dimension
(read-only, shared).  ``pack_symmetric`` also accepts a preallocated
``out`` slice so fused communication buffers can be filled in place
without intermediate copies.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_square


def packed_size(d: int) -> int:
    """Elements of the packed upper triangle of a ``d x d`` matrix."""
    if d < 0:
        raise ValueError(f"matrix dimension must be >= 0, got {d}")
    return d * (d + 1) // 2


@lru_cache(maxsize=512)
def _triu_flat_indices(d: int) -> Tuple[np.ndarray, np.ndarray]:
    """(upper, lower) flat index vectors of the triangle, cached per ``d``.

    ``upper[k]`` is the row-major position of the k-th packed element;
    ``lower[k]`` is the position of its transpose mirror.  Arrays are
    marked read-only because they are shared across all callers.
    """
    rows, cols = np.triu_indices(d)
    upper = rows * d + cols
    lower = cols * d + rows
    upper.setflags(write=False)
    lower.setflags(write=False)
    return upper, lower


def pack_symmetric(matrix: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Pack a symmetric ``d x d`` matrix into its upper triangle (1-D).

    Only the upper triangle is read; the caller guarantees symmetry.
    When ``out`` is given (a 1-D array of ``packed_size(d)`` elements,
    e.g. a slice of a fused communication buffer) the triangle is written
    there and ``out`` is returned.
    """
    check_square("matrix", matrix)
    d = matrix.shape[0]
    upper, _ = _triu_flat_indices(d)
    flat = np.ascontiguousarray(matrix).reshape(-1)
    if out is None:
        return flat[upper]
    if out.ndim != 1 or out.size != upper.size:
        raise ValueError(f"out has shape {out.shape}; expected ({upper.size},) for d={d}")
    np.take(flat, upper, out=out)
    return out


def unpack_symmetric(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_symmetric`: rebuild the full symmetric matrix."""
    expected = packed_size(d)
    if packed.ndim != 1 or packed.size != expected:
        raise ValueError(f"packed size {packed.shape} != ({expected},) for d={d}")
    upper, lower = _triu_flat_indices(d)
    out = np.empty((d, d), dtype=packed.dtype)
    flat = out.reshape(-1)
    flat[lower] = packed  # mirror first so the diagonal is written last ...
    flat[upper] = packed  # ... by the authoritative upper triangle
    return out
