"""In-process collective communication runtime (the Horovod stand-in).

``P`` ranks run as Python threads inside one process and synchronize
through :class:`CollectiveGroup`.  The collectives have synchronous
(all-ranks-must-call) semantics with deterministic reduction order, so a
distributed K-FAC step produces bit-identical results on every rank —
which is exactly the property the paper relies on ("all GPUs should keep
a consistent model at every iteration", Section III-B) and which our
tests assert.

Mismatched collective sequences (rank 0 calls allreduce while rank 1
calls broadcast) are detected and raised as :class:`CollectiveMismatchError`
on every rank instead of deadlocking.
"""

from repro.comm.group import (
    CollectiveAbortedError,
    CollectiveGroup,
    CollectiveMismatchError,
    Communicator,
    TrafficCounter,
    run_spmd,
)
from repro.comm.packing import pack_symmetric, packed_size, unpack_symmetric
from repro.comm.wire import (
    TOPK_INDEX_BYTES,
    WIRE_DTYPES,
    compressed_elements,
    dtype_bytes,
    fp32_equivalent_elements,
    wire_bytes,
    wire_payload,
)

__all__ = [
    "CollectiveGroup",
    "Communicator",
    "CollectiveMismatchError",
    "CollectiveAbortedError",
    "TrafficCounter",
    "run_spmd",
    "pack_symmetric",
    "packed_size",
    "unpack_symmetric",
    "WIRE_DTYPES",
    "TOPK_INDEX_BYTES",
    "dtype_bytes",
    "compressed_elements",
    "wire_payload",
    "wire_bytes",
    "fp32_equivalent_elements",
]
