#!/usr/bin/env python
"""Dependency-free documentation builder for the repro docs site.

``make docs`` runs this script.  It has no third-party dependencies
(the repro toolchain deliberately ships without sphinx/mkdocs), yet
covers what a docs CI job needs:

1. **API reference generation** — walks the curated public surface
   (each package's ``__all__``) and writes one markdown page per
   package under ``docs/_build/api/``, with signatures and docstrings
   pulled from the live modules, so the reference can never drift from
   the code.
2. **HTML rendering** — converts every markdown page (narrative sources
   in ``docs/`` plus the generated reference) to a small static HTML
   site under ``docs/_build/html/``.
3. **Strict checks** (any warning fails the build):

   * every public symbol of the documented packages has a docstring;
   * every relative markdown link and ``#anchor`` resolves to an
     existing page/heading;
   * every module / test file referenced in ``paper_map.md`` exists.

Usage::

    python docs/build.py            # build into docs/_build/
    python docs/build.py --check    # checks only, write nothing
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import re
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
BUILD_DIR = DOCS_DIR / "_build"

#: Packages whose public (``__all__``) surface is documented.  Order is
#: the order of the generated reference index.
API_PACKAGES = [
    "repro.plan",
    "repro.autotune",
    "repro.serve",
    "repro.faults",
    "repro.topo",
    "repro.sim",
    "repro.obs",
    "repro.perf",
    "repro.comm",
    "repro.core",
    "repro.models",
    "repro.experiments.base",
    "repro.workloads",
]

#: Packages under the strict docstring audit (ISSUE 5 satellite): every
#: public class/function must carry a docstring.
AUDITED_PACKAGES = {
    "repro.plan",
    "repro.autotune",
    "repro.serve",
    "repro.faults",
    "repro.topo",
}

#: Narrative pages, in navigation order (all must exist).
NAV_PAGES = [
    ("index.md", "Overview"),
    ("architecture.md", "Architecture"),
    ("tutorial.md", "Strategy / Plan / Session tutorial"),
    ("autotuning.md", "Autotuner guide"),
    ("topologies.md", "Topology modeling guide"),
    ("precision.md", "Precision, compression & staleness"),
    ("robustness.md", "Robustness & fault-aware planning"),
    ("observability.md", "Observability & tracing"),
    ("serving.md", "Plan serving"),
    ("paper_map.md", "Paper-to-code map"),
]


def warn(warnings: list, message: str) -> None:
    warnings.append(message)
    print(f"warning: {message}", file=sys.stderr)


# ---------------------------------------------------------------------------
# API reference generation
# ---------------------------------------------------------------------------


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_line(doc: str) -> str:
    return doc.strip().splitlines()[0] if doc and doc.strip() else ""


def generate_api_page(package: str, warnings: list) -> str:
    """Markdown API reference for one package's ``__all__`` surface."""
    module = importlib.import_module(package)
    names = getattr(module, "__all__", None)
    if names is None:
        warn(warnings, f"{package} has no __all__; cannot document its surface")
        names = []
    lines = [f"# `{package}` API reference", ""]
    module_doc = inspect.getdoc(module)
    if module_doc:
        lines += [module_doc, ""]
    else:
        warn(warnings, f"{package} has no module docstring")
    audited = package in AUDITED_PACKAGES
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            warn(warnings, f"{package}.__all__ lists {name!r} but it is missing")
            continue
        lines.append(f"## `{name}`")
        lines.append("")
        if inspect.isclass(obj):
            lines.append(f"```python\nclass {name}{_signature(obj)}\n```")
        elif callable(obj):
            lines.append(f"```python\n{name}{_signature(obj)}\n```")
        else:
            kind = type(obj).__name__
            lines.append(f"*constant* (`{kind}`)")
        lines.append("")
        doc = inspect.getdoc(obj)
        if doc:
            lines += [doc, ""]
        elif inspect.isclass(obj) or callable(obj):
            message = f"{package}.{name} has no docstring"
            if audited:
                warn(warnings, message)
            else:
                print(f"note: {message} (package not under audit)", file=sys.stderr)
        if inspect.isclass(obj):
            for mname, member in sorted(vars(obj).items()):
                if mname.startswith("_") or not callable(member):
                    continue
                mdoc = inspect.getdoc(getattr(obj, mname))
                if audited and not mdoc:
                    warn(warnings, f"{package}.{name}.{mname} has no docstring")
                if mdoc:
                    lines.append(f"### `{name}.{mname}{_signature(member)}`")
                    lines.append("")
                    lines += [mdoc, ""]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Minimal markdown -> HTML (headings, code, lists, tables, links)
# ---------------------------------------------------------------------------

_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")


def _anchor(text: str) -> str:
    """GitHub-style anchor for a heading."""
    text = re.sub(r"`", "", text.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _inline(text: str) -> str:
    text = html.escape(text, quote=False)
    text = _INLINE_CODE.sub(lambda m: f"<code>{m.group(1)}</code>", text)
    text = _BOLD.sub(lambda m: f"<strong>{m.group(1)}</strong>", text)

    def link(m):
        label, target = m.group(1), m.group(2)
        if target.endswith(".md") or ".md#" in target:
            target = target.replace(".md", ".html", 1)
        return f'<a href="{target}">{label}</a>'

    return _LINK.sub(link, text)


def markdown_to_html(text: str, title: str) -> str:
    out = []
    lines = text.splitlines()
    i = 0
    in_list = False
    while i < len(lines):
        line = lines[i]
        if line.startswith("```"):
            if in_list:
                out.append("</ul>")
                in_list = False
            block = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(lines[i])
                i += 1
            code = html.escape("\n".join(block))
            out.append(f"<pre><code>{code}</code></pre>")
            i += 1
            continue
        heading = re.match(r"^(#{1,6})\s+(.*)$", line)
        if heading:
            if in_list:
                out.append("</ul>")
                in_list = False
            level = len(heading.group(1))
            content = heading.group(2)
            out.append(
                f'<h{level} id="{_anchor(content)}">{_inline(content)}</h{level}>'
            )
            i += 1
            continue
        if line.startswith("|") and i + 1 < len(lines) and re.match(
            r"^\|[\s:|-]+\|$", lines[i + 1].strip()
        ):
            if in_list:
                out.append("</ul>")
                in_list = False
            header = [c.strip() for c in line.strip().strip("|").split("|")]
            out.append("<table><thead><tr>")
            out += [f"<th>{_inline(c)}</th>" for c in header]
            out.append("</tr></thead><tbody>")
            i += 2
            while i < len(lines) and lines[i].startswith("|"):
                cells = [c.strip() for c in lines[i].strip().strip("|").split("|")]
                out.append(
                    "<tr>" + "".join(f"<td>{_inline(c)}</td>" for c in cells) + "</tr>"
                )
                i += 1
            out.append("</tbody></table>")
            continue
        bullet = re.match(r"^[-*]\s+(.*)$", line)
        if bullet:
            if not in_list:
                out.append("<ul>")
                in_list = True
            out.append(f"<li>{_inline(bullet.group(1))}</li>")
            i += 1
            continue
        if in_list:
            out.append("</ul>")
            in_list = False
        if line.strip():
            out.append(f"<p>{_inline(line)}</p>")
        i += 1
    if in_list:
        out.append("</ul>")
    body = "\n".join(out)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto;"
        "padding:0 1em;line-height:1.5}pre{background:#f6f8fa;padding:1em;"
        "overflow-x:auto}code{background:#f6f8fa}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}</style>"
        f"</head><body>\n{body}\n</body></html>\n"
    )


# ---------------------------------------------------------------------------
# Link / anchor / paper-map checking
# ---------------------------------------------------------------------------


def collect_anchors(pages: dict) -> dict:
    anchors = {}
    for name, text in pages.items():
        page_anchors = set()
        in_code = False
        for line in text.splitlines():
            if line.startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            heading = re.match(r"^(#{1,6})\s+(.*)$", line)
            if heading:
                page_anchors.add(_anchor(heading.group(2)))
        anchors[name] = page_anchors
    return anchors


def check_links(pages: dict, warnings: list) -> None:
    import posixpath

    anchors = collect_anchors(pages)
    for name, text in pages.items():
        in_code = False
        for line in text.splitlines():
            if line.startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for match in _LINK.finditer(line):
                target = match.group(2)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                page, _, anchor = target.partition("#")
                # Resolve relative to the linking page's directory.
                if page:
                    page = posixpath.normpath(
                        posixpath.join(posixpath.dirname(name), page)
                    )
                else:
                    page = name
                if not page.endswith(".md"):
                    warn(warnings, f"{name}: non-markdown internal link {target!r}")
                    continue
                if page not in pages:
                    warn(warnings, f"{name}: broken link to {page!r}")
                    continue
                if anchor and anchor not in anchors[page]:
                    warn(warnings, f"{name}: broken anchor {target!r}")


_PAPER_MAP_CELL = re.compile(r"`([^`]+)`")


def check_paper_map(text: str, warnings: list) -> None:
    """Every module/test referenced in the paper map must exist."""
    rows = 0
    for line in text.splitlines():
        if not line.startswith("|") or line.startswith("| Artifact") or re.match(
            r"^\|[\s:|-]+\|$", line.strip()
        ):
            continue
        rows += 1
        for ref in _PAPER_MAP_CELL.findall(line):
            if ref.startswith("repro."):
                module = ref.split(":")[0]
                try:
                    importlib.import_module(module)
                except ImportError:
                    warn(warnings, f"paper_map.md: module {module!r} does not import")
            elif ref.startswith(("tests/", "src/", "examples/")):
                if not (REPO_ROOT / ref.split("::")[0]).exists():
                    warn(warnings, f"paper_map.md: file {ref!r} does not exist")
    if rows < 15:
        warn(warnings, f"paper_map.md: only {rows} mapping rows (expected >= 15)")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def build(check_only: bool = False) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    warnings: list = []

    pages = {}
    for filename, _ in NAV_PAGES:
        path = DOCS_DIR / filename
        if not path.exists():
            warn(warnings, f"missing narrative page {filename}")
            continue
        pages[filename] = path.read_text()

    api_pages = {}
    for package in API_PACKAGES:
        api_pages[f"api/{package}.md"] = generate_api_page(package, warnings)
    api_index = ["# API reference", ""]
    api_index += [
        f"- [`{p}`]({p}.md) — {_first_line(inspect.getdoc(importlib.import_module(p)) or '')}"
        for p in API_PACKAGES
    ]
    api_pages["api/index.md"] = "\n".join(api_index) + "\n"

    all_pages = {**pages, **api_pages}
    check_links(all_pages, warnings)
    if "paper_map.md" in pages:
        check_paper_map(pages["paper_map.md"], warnings)

    if not check_only:
        for name, text in all_pages.items():
            md_out = BUILD_DIR / name
            md_out.parent.mkdir(parents=True, exist_ok=True)
            md_out.write_text(text)
            html_out = BUILD_DIR / "html" / name.replace(".md", ".html")
            html_out.parent.mkdir(parents=True, exist_ok=True)
            title = next(
                (
                    line.lstrip("# ").strip()
                    for line in text.splitlines()
                    if line.startswith("#")
                ),
                name,
            )
            html_out.write_text(markdown_to_html(text, title))
        print(
            f"built {len(all_pages)} pages -> {BUILD_DIR / 'html'}"
            f" ({len(api_pages)} generated API pages)"
        )

    if warnings:
        print(f"docs build FAILED with {len(warnings)} warning(s)", file=sys.stderr)
        return 1
    print("docs build clean: 0 warnings")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true", help="run all checks without writing _build/"
    )
    args = parser.parse_args(argv)
    return build(check_only=args.check)


if __name__ == "__main__":
    sys.exit(main())
